"""Unit tests for repro.core.multirun (§3.4 pooling)."""

import numpy as np
import pytest

from repro.core.multirun import multirun
from repro.parallel.backends import SerialBackend


class TestMultirun:
    def test_stops_at_coverage_target(self, sine_dataset, tiny_config):
        res = multirun(
            sine_dataset, tiny_config.replace(generations=100),
            coverage_target=0.5, max_executions=6, root_seed=1,
        )
        assert res.coverage_history[-1] >= 0.5
        assert res.n_executions <= 6

    def test_respects_max_executions(self, sine_dataset, tiny_config):
        res = multirun(
            sine_dataset, tiny_config.replace(generations=20),
            coverage_target=1.01,  # unreachable
            max_executions=2, root_seed=1,
        )
        assert res.n_executions == 2

    def test_pool_grows_monotonically(self, sine_dataset, tiny_config):
        res = multirun(
            sine_dataset, tiny_config.replace(generations=50),
            coverage_target=1.01, max_executions=3, root_seed=1,
        )
        cov = res.coverage_history
        assert all(b >= a - 1e-12 for a, b in zip(cov, cov[1:]))

    def test_deterministic_under_root_seed(self, sine_dataset, tiny_config):
        kwargs = dict(coverage_target=1.01, max_executions=2, root_seed=42)
        r1 = multirun(sine_dataset, tiny_config.replace(generations=60), **kwargs)
        r2 = multirun(sine_dataset, tiny_config.replace(generations=60), **kwargs)
        assert len(r1.system) == len(r2.system)
        for a, b in zip(r1.system.rules, r2.system.rules):
            assert np.array_equal(a.lower, b.lower)

    def test_batch_size_does_not_change_results(self, sine_dataset, tiny_config):
        """Seeding is per-execution-index, so batching is transparent."""
        cfg = tiny_config.replace(generations=40)
        r1 = multirun(sine_dataset, cfg, coverage_target=1.01,
                      max_executions=3, batch_size=1, root_seed=5)
        r3 = multirun(sine_dataset, cfg, coverage_target=1.01,
                      max_executions=3, batch_size=3, root_seed=5)
        assert len(r1.system) == len(r3.system)
        for a, b in zip(r1.system.rules, r3.system.rules):
            assert np.array_equal(a.lower, b.lower)

    def test_batch_size_invariant_with_reachable_target(
        self, sine_dataset, tiny_config
    ):
        """Pooling truncates at the first execution reaching the target.

        Regression: executions *after* the target was met inside the
        same batch used to be pooled anyway, so the final pool depended
        on ``batch_size``/backend.  With a target reached mid-batch, a
        serial ``batch_size=1`` run and a ``batch_size=4`` round must
        return identical systems, histories and execution counts.
        """
        cfg = tiny_config.replace(generations=100)
        kwargs = dict(coverage_target=0.5, max_executions=4, root_seed=1)
        r1 = multirun(sine_dataset, cfg, batch_size=1, **kwargs)
        r4 = multirun(sine_dataset, cfg, batch_size=4, **kwargs)
        # The target is reachable before max_executions (else the test
        # exercises nothing) ...
        assert r1.n_executions < 4
        # ... and every batched quantity matches the serial run.
        assert r4.n_executions == r1.n_executions
        assert r4.coverage_history == r1.coverage_history
        assert len(r4.system) == len(r1.system)
        for a, b in zip(r1.system.rules, r4.system.rules):
            assert np.array_equal(a.lower, b.lower)
            assert np.array_equal(a.upper, b.upper)
            assert a.fitness == b.fitness

    def test_pooled_masks_rebound_to_pooling_dataset(
        self, sine_dataset, tiny_config
    ):
        """Pooled rules' mask caches carry provenance for ``dataset.X``.

        Executions evaluate against worker-local window matrices; the
        pooling loop re-binds the (value-identical) masks to the outer
        dataset so the identity-keyed cache makes coverage checks an
        O(P*n) union instead of a full re-match every round.
        """
        res = multirun(
            sine_dataset, tiny_config.replace(generations=60),
            coverage_target=1.01, max_executions=2, root_seed=1,
        )
        assert res.system.rules
        for rule in res.system.rules:
            assert rule.cached_mask_for(sine_dataset.X) is not None

    def test_pooled_rules_are_valid_only(self, sine_dataset, tiny_config):
        res = multirun(
            sine_dataset, tiny_config.replace(generations=60),
            coverage_target=1.01, max_executions=2, root_seed=1,
        )
        f_min = tiny_config.fitness.f_min
        assert all(r.fitness > f_min for r in res.system.rules)

    def test_executions_recorded(self, sine_dataset, tiny_config):
        res = multirun(
            sine_dataset, tiny_config.replace(generations=30),
            coverage_target=1.01, max_executions=2, root_seed=1,
        )
        assert len(res.executions) == 2
        assert all(e.config is not None for e in res.executions)

    def test_parameter_validation(self, sine_dataset, tiny_config):
        with pytest.raises(ValueError):
            multirun(sine_dataset, tiny_config, coverage_target=-0.1)
        with pytest.raises(ValueError):
            multirun(sine_dataset, tiny_config, max_executions=0)

    def test_explicit_backend(self, sine_dataset, tiny_config):
        res = multirun(
            sine_dataset, tiny_config.replace(generations=30),
            coverage_target=1.01, max_executions=1,
            backend=SerialBackend(), root_seed=0,
        )
        assert res.n_executions == 1
