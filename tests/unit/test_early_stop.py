"""Unit tests for the engine's early-stopping extension."""

import numpy as np
import pytest

from repro.core.config import EvolutionConfig
from repro.core.engine import evolve


class TestEarlyStop:
    def test_disabled_by_default(self, sine_dataset, tiny_config):
        assert tiny_config.early_stop_patience == 0
        res = evolve(sine_dataset, tiny_config)
        assert len(res.rules) == tiny_config.population_size

    def test_converged_run_stops_early(self, sine_dataset, tiny_config):
        """With patience 1, the first rejected offspring halts the run;
        the stats trail records the stopping generation."""
        cfg = tiny_config.replace(
            generations=5000, early_stop_patience=25, stats_every=0,
        )
        res = evolve(sine_dataset, cfg)
        # The run halts once 25 consecutive offspring are rejected —
        # far before 5000 generations on this easy problem.
        assert res.stats  # final snapshot recorded at the stop point
        assert res.stats[-1].generation < 5000

    def test_early_stop_does_not_hurt_quality_much(self, sine_dataset, tiny_config):
        full = evolve(sine_dataset, tiny_config.replace(generations=800))
        stopped = evolve(
            sine_dataset,
            tiny_config.replace(generations=800, early_stop_patience=100),
        )
        best_full = max(r.fitness for r in full.rules)
        best_stop = max(r.fitness for r in stopped.rules)
        assert best_stop >= 0.5 * best_full

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            EvolutionConfig(early_stop_patience=-1)

    def test_deterministic_with_early_stop(self, sine_dataset, tiny_config):
        cfg = tiny_config.replace(generations=2000, early_stop_patience=50)
        a = evolve(sine_dataset, cfg)
        b = evolve(sine_dataset, cfg)
        assert a.replacements == b.replacements
        for ra, rb in zip(a.rules, b.rules):
            assert np.array_equal(ra.lower, rb.lower)
