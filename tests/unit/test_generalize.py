"""Unit tests for the tabular RuleRegressor (§5 generalization)."""

import numpy as np
import pytest

from repro.core.generalize import RuleRegressor, TabularDataset


@pytest.fixture
def piecewise_data(rng):
    """Regression target with two regimes — where local rules shine."""
    X = rng.uniform(-1, 1, size=(500, 3))
    y = np.where(X[:, 0] > 0, 2.0 * X[:, 1], -3.0 * X[:, 2])
    y = y + rng.normal(0, 0.02, size=500)
    return X, y


class TestTabularDataset:
    def test_from_arrays(self, piecewise_data):
        X, y = piecewise_data
        ds = TabularDataset.from_arrays(X, y)
        assert len(ds) == 500
        assert ds.d == 3
        lo, hi = ds.output_range
        assert lo < 0 < hi

    def test_subset(self, piecewise_data):
        X, y = piecewise_data
        ds = TabularDataset.from_arrays(X, y)
        mask = np.zeros(500, dtype=bool)
        mask[:10] = True
        Xs, ys = ds.subset(mask)
        assert Xs.shape == (10, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TabularDataset.from_arrays(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            TabularDataset.from_arrays(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            TabularDataset.from_arrays(np.zeros((0, 2)), np.zeros(0))


class TestRuleRegressor:
    def test_learns_piecewise_function(self, piecewise_data, rng):
        X, y = piecewise_data
        reg = RuleRegressor(
            population_size=25, generations=800, n_executions=2, seed=1
        )
        reg.fit(X, y)
        Xt = rng.uniform(-1, 1, size=(150, 3))
        yt = np.where(Xt[:, 0] > 0, 2.0 * Xt[:, 1], -3.0 * Xt[:, 2])
        pred = reg.predict(Xt)
        covered = np.isfinite(pred)
        assert covered.mean() > 0.3
        err = float(np.sqrt(np.mean((pred[covered] - yt[covered]) ** 2)))
        baseline = float(np.sqrt(np.mean((yt - yt.mean()) ** 2)))
        assert err < 0.5 * baseline

    def test_fallback_mean(self, piecewise_data):
        X, y = piecewise_data
        reg = RuleRegressor(
            population_size=10, generations=100, n_executions=1, seed=2
        ).fit(X, y)
        far = np.full((5, 3), 100.0)  # out of range → abstention
        pred = reg.predict(far, fallback="mean")
        assert np.allclose(pred, y.mean(), atol=1e-9)
        with pytest.raises(ValueError):
            reg.predict(far, fallback="zero")

    def test_abstention_is_nan_by_default(self, piecewise_data):
        X, y = piecewise_data
        reg = RuleRegressor(
            population_size=10, generations=100, n_executions=1, seed=3
        ).fit(X, y)
        pred = reg.predict(np.full((3, 3), 100.0))
        assert np.isnan(pred).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RuleRegressor().predict(np.zeros((2, 3)))

    def test_explicit_emax(self, piecewise_data):
        X, y = piecewise_data
        reg = RuleRegressor(
            e_max=0.5, population_size=10, generations=100,
            n_executions=1, seed=4,
        ).fit(X, y)
        assert reg.training_coverage is not None

    def test_deterministic(self, piecewise_data):
        X, y = piecewise_data
        kwargs = dict(population_size=10, generations=150,
                      n_executions=1, seed=9)
        a = RuleRegressor(**kwargs).fit(X, y).predict(X[:50])
        b = RuleRegressor(**kwargs).fit(X, y).predict(X[:50])
        assert np.allclose(np.nan_to_num(a), np.nan_to_num(b))
