"""Unit tests for repro.metrics (errors + coverage-aware scoring)."""

import numpy as np
import pytest

from repro.metrics.coverage import (
    score_table1,
    score_table2,
    score_table3,
    score_with_coverage,
)
from repro.metrics.errors import (
    galvan_error,
    mae,
    max_abs_error,
    mse,
    nmse,
    rmse,
    rmse_paper_literal,
)


class TestErrors:
    def test_rmse_known_value(self):
        t = np.array([0.0, 0.0, 0.0, 0.0])
        p = np.array([1.0, -1.0, 1.0, -1.0])
        assert rmse(t, p) == pytest.approx(1.0)

    def test_rmse_zero_on_perfect(self):
        x = np.array([1.0, 2.0, 3.0])
        assert rmse(x, x) == 0.0
        assert mse(x, x) == 0.0
        assert mae(x, x) == 0.0

    def test_paper_literal_differs_from_standard(self):
        t = np.zeros(4)
        # literal: e = 0.5*4 = 2; sqrt(mean(e^2)) = 2;  standard rmse = 2.
        # with p=3: literal e = 4.5 → 4.5; standard = 3.
        p3 = np.full(4, 3.0)
        assert rmse_paper_literal(t, p3) == pytest.approx(4.5)
        assert rmse(t, p3) == pytest.approx(3.0)

    def test_nmse_one_for_mean_predictor(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=500)
        p = np.full(500, t.mean())
        assert nmse(t, p) == pytest.approx(1.0, rel=1e-10)

    def test_nmse_constant_true_raises(self):
        with pytest.raises(ValueError, match="constant"):
            nmse(np.ones(5), np.zeros(5))

    def test_galvan_error_formula(self):
        t = np.array([1.0, 2.0, 3.0])
        p = np.array([1.0, 1.0, 1.0])
        # sum sq = 0 + 1 + 4 = 5 ; / (2*(3+2)) = 0.5
        assert galvan_error(t, p, horizon=2) == pytest.approx(0.5)

    def test_galvan_horizon_validation(self):
        with pytest.raises(ValueError):
            galvan_error(np.ones(3), np.ones(3), horizon=-1)

    def test_max_abs_error(self):
        assert max_abs_error(np.zeros(3), np.array([0.1, -0.7, 0.3])) == pytest.approx(0.7)

    @pytest.mark.parametrize("fn", [rmse, mse, mae, nmse, max_abs_error])
    def test_shape_mismatch(self, fn):
        with pytest.raises(ValueError):
            fn(np.zeros(3), np.zeros(4))

    @pytest.mark.parametrize("fn", [rmse, mse, mae])
    def test_empty_raises(self, fn):
        with pytest.raises(ValueError):
            fn(np.array([]), np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            rmse(np.array([1.0, np.nan]), np.array([1.0, 1.0]))


class TestCoverageScore:
    def test_counts_and_error(self):
        t = np.array([0.0, 1.0, 2.0, 3.0])
        p = np.array([0.0, np.nan, 2.5, np.nan])
        s = score_with_coverage(t, p)
        assert s.n_total == 4 and s.n_predicted == 2
        assert s.coverage == 0.5
        assert s.percentage == 50.0
        assert s.error == pytest.approx(rmse(np.array([0.0, 2.0]), np.array([0.0, 2.5])))

    def test_explicit_mask_overrides_nan(self):
        t = np.array([0.0, 1.0])
        p = np.array([0.5, 1.5])
        mask = np.array([True, False])
        s = score_with_coverage(t, p, predicted=mask)
        assert s.n_predicted == 1
        assert s.error == pytest.approx(0.5)

    def test_zero_coverage(self):
        s = score_with_coverage(np.ones(3), np.full(3, np.nan))
        assert s.coverage == 0.0
        assert np.isnan(s.error)

    def test_full_coverage(self):
        t = np.array([1.0, 2.0])
        s = score_with_coverage(t, t)
        assert s.coverage == 1.0 and s.error == 0.0

    def test_table_scorers(self):
        rng = np.random.default_rng(1)
        t = rng.uniform(size=50)
        p = t + rng.normal(0, 0.01, size=50)
        s1 = score_table1(t, p)
        s2 = score_table2(t, p)
        s3 = score_table3(t, p, horizon=4)
        assert s1.error == pytest.approx(rmse(t, p))
        assert s2.error == pytest.approx(nmse(t, p))
        assert s3.error == pytest.approx(galvan_error(t, p, 4))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            score_with_coverage(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            score_with_coverage(np.zeros(3), np.zeros(3), predicted=np.ones(4, dtype=bool))
