"""Unit tests for the EMAX tuner and the CSV series I/O."""

import numpy as np
import pytest

from repro.core.config import EvolutionConfig, FitnessParams
from repro.core.tuning import tune_e_max
from repro.io.csv_io import read_series_csv, write_series_csv
from repro.series.noise import sine_series
from repro.series.windowing import WindowDataset


class TestTuneEmax:
    @pytest.fixture
    def setup(self):
        series = sine_series(500, period=40, noise_sigma=0.05, seed=2)
        dataset = WindowDataset.from_series(series, 6, 1)
        config = EvolutionConfig(
            d=6, horizon=1, population_size=15, generations=400,
            fitness=FitnessParams(e_max=1.0),
        )
        return dataset, config

    def test_reaches_target_coverage(self, setup):
        dataset, config = setup
        result = tune_e_max(
            dataset, config, target_coverage=0.6,
            pilot_generations=200, max_trials=5, seed=1,
        )
        assert result.coverage >= 0.6
        assert result.e_max > 0
        assert len(result.trials) <= 5

    def test_selected_is_smallest_passing_trial(self, setup):
        dataset, config = setup
        result = tune_e_max(
            dataset, config, target_coverage=0.5,
            pilot_generations=150, max_trials=5, seed=2,
        )
        passing = [t for t in result.trials if t[1] >= 0.5]
        assert result.e_max == min(t[0] for t in passing)

    def test_unreachable_target_returns_upper_bracket(self, setup):
        dataset, config = setup
        # Pilot with zero generations cannot reach full coverage of a
        # noisy series at a strict error bound — but the upper bracket
        # (200% of output range) usually covers everything; ask for an
        # impossible coverage via a dataset the rules can't cover.
        result = tune_e_max(
            dataset, config, target_coverage=1.0,
            pilot_generations=50, max_trials=3, seed=3,
        )
        assert result.trials  # ran, reported what it achieved

    def test_validation(self, setup):
        dataset, config = setup
        with pytest.raises(ValueError):
            tune_e_max(dataset, config, target_coverage=0.0)
        with pytest.raises(ValueError):
            tune_e_max(dataset, config, holdout_fraction=1.0)
        with pytest.raises(ValueError):
            tune_e_max(dataset, config, max_trials=1)

    def test_deterministic(self, setup):
        dataset, config = setup
        kwargs = dict(target_coverage=0.5, pilot_generations=100,
                      max_trials=3, seed=9)
        a = tune_e_max(dataset, config, **kwargs)
        b = tune_e_max(dataset, config, **kwargs)
        assert a.e_max == b.e_max
        assert a.trials == b.trials


class TestCsvIO:
    def test_roundtrip(self, tmp_path, rng):
        series = rng.normal(size=200)
        path = tmp_path / "series.csv"
        write_series_csv(series, path)
        back = read_series_csv(path)
        assert np.allclose(back, series)

    def test_roundtrip_without_header(self, tmp_path):
        path = tmp_path / "plain.csv"
        write_series_csv(np.array([1.5, 2.5]), path, header=None)
        assert np.allclose(read_series_csv(path), [1.5, 2.5])

    def test_reads_last_column_by_default(self, tmp_path):
        path = tmp_path / "two_col.csv"
        path.write_text("timestamp,value\n2020-01-01,3.0\n2020-01-02,4.0\n")
        assert np.allclose(read_series_csv(path), [3.0, 4.0])

    def test_explicit_column(self, tmp_path):
        path = tmp_path / "cols.csv"
        path.write_text("1.0,10.0\n2.0,20.0\n")
        assert np.allclose(read_series_csv(path, column=0), [1.0, 2.0])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("value\n1.0\n\n2.0\n")
        assert np.allclose(read_series_csv(path), [1.0, 2.0])

    def test_mid_file_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0\noops\n2.0\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_series_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("header_only\n")
        with pytest.raises(ValueError, match="no numeric"):
            read_series_csv(path)

    def test_write_validation(self, tmp_path):
        with pytest.raises(ValueError):
            write_series_csv(np.zeros((2, 2)), tmp_path / "x.csv")
