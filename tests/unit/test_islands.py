"""Unit tests for the island-model GA."""

import networkx as nx
import numpy as np
import pytest

from repro.parallel.islands import (
    IslandModel,
    complete_topology,
    ring_topology,
    star_topology,
    torus_topology,
)


class TestTopologies:
    def test_ring(self):
        g = ring_topology(4)
        assert sorted(g.edges) == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_ring_single_island(self):
        g = ring_topology(1)
        assert g.number_of_edges() == 0

    def test_torus_degree(self):
        g = torus_topology(2, 3)
        assert g.number_of_nodes() == 6
        # Each island emits to E and S neighbours.
        for node in g.nodes:
            assert g.out_degree(node) == 2

    def test_star(self):
        g = star_topology(4)
        assert g.has_edge(0, 3) and g.has_edge(3, 0)
        assert not g.has_edge(1, 2)

    def test_complete(self):
        g = complete_topology(3)
        assert g.number_of_edges() == 6

    @pytest.mark.parametrize("builder", [ring_topology, star_topology, complete_topology])
    def test_validation(self, builder):
        with pytest.raises(ValueError):
            builder(0)

    def test_torus_validation(self):
        with pytest.raises(ValueError):
            torus_topology(0, 3)


class TestIslandModel:
    def test_runs_and_pools(self, sine_dataset, tiny_config):
        cfg = tiny_config.replace(generations=100)
        model = IslandModel(
            sine_dataset, cfg, ring_topology(3),
            migration_interval=40, root_seed=1,
        )
        result = model.run()
        assert len(result.island_rules) == 3
        assert all(
            len(pop) == cfg.population_size for pop in result.island_rules
        )
        assert len(result.system) > 0
        assert result.migrations_sent > 0

    def test_migration_preserves_population_invariants(self, sine_dataset, tiny_config):
        cfg = tiny_config.replace(generations=80)
        model = IslandModel(
            sine_dataset, cfg, complete_topology(2),
            migration_interval=20, root_seed=2,
        )
        result = model.run()
        from repro.core.matching import match_mask

        for pop in result.island_rules:
            for rule in pop:
                if rule.match_mask is not None:
                    assert np.array_equal(
                        rule.match_mask, match_mask(rule, sine_dataset.X)
                    )

    def test_accepted_never_exceeds_sent(self, sine_dataset, tiny_config):
        model = IslandModel(
            sine_dataset, tiny_config.replace(generations=60),
            ring_topology(3), migration_interval=20, root_seed=3,
        )
        result = model.run()
        assert 0 <= result.migrations_accepted <= result.migrations_sent

    def test_single_island_no_migration(self, sine_dataset, tiny_config):
        model = IslandModel(
            sine_dataset, tiny_config.replace(generations=40),
            ring_topology(1), migration_interval=10, root_seed=4,
        )
        result = model.run()
        assert result.migrations_sent == 0

    def test_history_recorded(self, sine_dataset, tiny_config):
        model = IslandModel(
            sine_dataset, tiny_config.replace(generations=100),
            ring_topology(2), migration_interval=25, root_seed=5,
        )
        result = model.run()
        assert len(result.history) == 4
        assert set(result.history[0].keys()) == {0, 1}

    def test_bad_topology_labels(self, sine_dataset, tiny_config):
        g = nx.DiGraph()
        g.add_nodes_from(["a", "b"])
        with pytest.raises((ValueError, TypeError)):
            IslandModel(sine_dataset, tiny_config, g)

    def test_validation(self, sine_dataset, tiny_config):
        with pytest.raises(ValueError):
            IslandModel(sine_dataset, tiny_config, ring_topology(2),
                        migration_interval=0)
        with pytest.raises(ValueError):
            IslandModel(sine_dataset, tiny_config, ring_topology(2),
                        n_emigrants=0)
