"""Unit tests for the Lorenz generator and the profiling helpers."""

import numpy as np
import pytest

from repro.analysis.profiling import SectionTimer, engine_throughput, profile_run
from repro.series.lorenz import LorenzParams, lorenz_series


class TestLorenz:
    def test_shape_and_band(self):
        s = lorenz_series(500)
        assert s.shape == (500,)
        # x-component of the classic attractor lives in roughly ±20.
        assert -25 < s.min() < 0 < s.max() < 25

    def test_deterministic_without_seed(self):
        assert np.array_equal(lorenz_series(200), lorenz_series(200))

    def test_seed_changes_trajectory(self):
        assert not np.array_equal(
            lorenz_series(200, seed=1), lorenz_series(200, seed=2)
        )

    def test_two_lobe_switching(self):
        """The x component must visit both lobes (sign changes)."""
        s = lorenz_series(2000)
        assert (s > 5).any() and (s < -5).any()

    def test_components(self):
        z = lorenz_series(300, component=2)
        assert (z > 0).all()  # z stays positive on the attractor

    def test_validation(self):
        with pytest.raises(ValueError):
            lorenz_series(0)
        with pytest.raises(ValueError):
            lorenz_series(10, component=3)
        with pytest.raises(ValueError):
            LorenzParams(dt=0)
        with pytest.raises(ValueError):
            LorenzParams(sample_every=0)


class TestSectionTimer:
    def test_accumulates(self):
        timer = SectionTimer()
        for _ in range(3):
            with timer.section("work"):
                pass
        assert timer.counts["work"] == 3
        assert timer.totals["work"] >= 0.0
        assert timer.mean("work") == timer.totals["work"] / 3

    def test_report_sorted(self):
        import time

        timer = SectionTimer()
        with timer.section("slow"):
            time.sleep(0.01)
        with timer.section("fast"):
            pass
        report = timer.report()
        assert report.index("slow") < report.index("fast")

    def test_missing_label(self):
        with pytest.raises(KeyError):
            SectionTimer().mean("nothing")

    def test_reset(self):
        timer = SectionTimer()
        with timer.section("x"):
            pass
        timer.reset()
        assert not timer.totals


class TestEngineProbes:
    def test_throughput_positive(self, sine_dataset, tiny_config):
        rate = engine_throughput(sine_dataset, tiny_config, sample_generations=50)
        assert rate > 10  # generations/second on a toy problem

    def test_throughput_validation(self, sine_dataset, tiny_config):
        with pytest.raises(ValueError):
            engine_throughput(sine_dataset, tiny_config, sample_generations=0)

    def test_profile_run_reports_hotspots(self, sine_dataset, tiny_config):
        text = profile_run(sine_dataset, tiny_config, generations=50, top=5)
        assert "cumulative" in text
        assert "function calls" in text
