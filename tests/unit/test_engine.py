"""Unit tests for repro.core.engine (the steady-state GA)."""

import numpy as np
import pytest

from repro.core.engine import SteadyStateEngine, evolve
from repro.core.evaluation import evaluate_rule


class TestLifecycle:
    def test_initialize_builds_evaluated_population(self, sine_dataset, tiny_config):
        eng = SteadyStateEngine(sine_dataset, tiny_config)
        eng.initialize()
        assert len(eng.population) == tiny_config.population_size
        assert all(r.is_evaluated for r in eng.population)
        assert eng._masks.shape == (
            tiny_config.population_size,
            len(sine_dataset),
        )

    def test_mismatched_dataset_raises(self, sine_dataset, tiny_config):
        bad = tiny_config.replace(d=sine_dataset.d + 1)
        with pytest.raises(ValueError, match="D="):
            SteadyStateEngine(sine_dataset, bad)
        bad_h = tiny_config.replace(horizon=sine_dataset.horizon + 1)
        with pytest.raises(ValueError, match="horizon"):
            SteadyStateEngine(sine_dataset, bad_h)

    def test_bad_init_mode(self, sine_dataset, tiny_config):
        with pytest.raises(ValueError, match="init"):
            SteadyStateEngine(sine_dataset, tiny_config, init="magic")


class TestEvolution:
    def test_mean_fitness_never_decreases(self, sine_dataset, tiny_config):
        """Replace-if-strictly-fitter ⇒ monotone population fitness sum."""
        eng = SteadyStateEngine(sine_dataset, tiny_config)
        eng.initialize()
        prev = np.mean([r.fitness for r in eng.population])
        for _ in range(100):
            eng.step()
            cur = np.mean([r.fitness for r in eng.population])
            assert cur >= prev - 1e-12
            prev = cur

    def test_population_size_constant(self, sine_dataset, tiny_config):
        res = evolve(sine_dataset, tiny_config)
        assert len(res.rules) == tiny_config.population_size

    def test_masks_stay_consistent(self, sine_dataset, tiny_config):
        """The cached mask matrix always matches fresh evaluation."""
        eng = SteadyStateEngine(sine_dataset, tiny_config)
        eng.initialize()
        for _ in range(60):
            eng.step()
        from repro.core.matching import match_mask

        for i, rule in enumerate(eng.population):
            assert np.array_equal(
                eng._masks[i], match_mask(rule, sine_dataset.X)
            )

    def test_deterministic_given_seed(self, sine_dataset, tiny_config):
        r1 = evolve(sine_dataset, tiny_config)
        r2 = evolve(sine_dataset, tiny_config)
        assert r1.replacements == r2.replacements
        for a, b in zip(r1.rules, r2.rules):
            assert np.array_equal(a.lower, b.lower)
            assert a.fitness == b.fitness

    def test_different_seeds_differ(self, sine_dataset, tiny_config):
        r1 = evolve(sine_dataset, tiny_config)
        r2 = evolve(sine_dataset, tiny_config.replace(seed=99))
        same = all(
            np.array_equal(a.lower, b.lower)
            for a, b in zip(r1.rules, r2.rules)
        )
        assert not same

    def test_zero_generations(self, sine_dataset, tiny_config):
        res = evolve(sine_dataset, tiny_config.replace(generations=0))
        assert res.replacements == 0
        assert len(res.rules) == tiny_config.population_size

    def test_stats_recorded(self, sine_dataset, tiny_config):
        cfg = tiny_config.replace(generations=100, stats_every=25)
        res = evolve(sine_dataset, cfg)
        assert len(res.stats) == 4
        assert res.stats[-1].generation == 100
        for st in res.stats:
            assert 0.0 <= st.coverage <= 1.0
            assert st.n_valid <= cfg.population_size

    def test_valid_rules_filtered(self, sine_dataset, tiny_config):
        res = evolve(sine_dataset, tiny_config)
        f_min = tiny_config.fitness.f_min
        assert all(r.fitness > f_min for r in res.valid_rules)

    def test_valid_rules_same_criterion_without_config(
        self, sine_dataset, tiny_config
    ):
        """Both branches of ``valid_rules`` use the fitness criterion.

        Regression: the ``config is None`` branch used to filter by
        ``isfinite(error)`` instead, so the same rule list produced a
        different "valid" subset depending on whether the result still
        carried its config.  Valid fitness is always positive and the
        invalid floor is always ``<= 0``, so the documented ``0.0``
        fallback selects the identical subset.
        """
        from repro.core.engine import EvolutionResult

        res = evolve(sine_dataset, tiny_config)
        bare = EvolutionResult(rules=res.rules, config=None)
        assert [id(r) for r in bare.valid_rules] == [
            id(r) for r in res.valid_rules
        ]
        # An evaluated-but-invalid rule (fitness == f_min <= 0, error
        # finite or not) is excluded by both branches.
        floor = tiny_config.fitness.f_min
        assert all(r.fitness > 0.0 for r in bare.valid_rules)
        invalid = [r for r in res.rules if r.fitness == floor]
        for rule in invalid:
            assert rule not in bare.valid_rules

    def test_evolution_improves_over_init(self, sine_dataset, tiny_config):
        eng = SteadyStateEngine(sine_dataset, tiny_config)
        eng.initialize()
        init_best = max(r.fitness for r in eng.population)
        res = eng.run()
        final_best = max(r.fitness for r in res.rules)
        assert final_best >= init_best
        assert res.replacements > 0  # something actually evolved


class TestEvaluation:
    def test_zero_match_rule_gets_fmin(self, sine_dataset, tiny_config):
        from repro.core.rule import Rule

        far = Rule.from_box(
            np.full(sine_dataset.d, 1e6), np.full(sine_dataset.d, 2e6)
        )
        evaluate_rule(far, sine_dataset, tiny_config)
        assert far.fitness == tiny_config.fitness.f_min
        assert far.n_matched == 0
        assert far.error == np.inf

    def test_all_matching_rule(self, sine_dataset, tiny_config):
        from repro.core.rule import Rule

        lo, hi = sine_dataset.input_range
        everything = Rule.from_box(
            np.full(sine_dataset.d, lo - 1), np.full(sine_dataset.d, hi + 1)
        )
        evaluate_rule(everything, sine_dataset, tiny_config)
        assert everything.n_matched == len(sine_dataset)
        assert np.isfinite(everything.error)
        assert everything.coeffs is not None  # linear mode fit

    def test_constant_mode(self, sine_dataset, tiny_config):
        from repro.core.rule import Rule

        cfg = tiny_config.replace(predicting_mode="constant")
        lo, hi = sine_dataset.input_range
        rule = Rule.from_box(
            np.full(sine_dataset.d, lo - 1), np.full(sine_dataset.d, hi + 1)
        )
        evaluate_rule(rule, sine_dataset, cfg)
        assert rule.coeffs is None
        assert rule.prediction == pytest.approx(float(sine_dataset.y.mean()))
