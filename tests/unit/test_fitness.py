"""Unit tests for repro.core.fitness (the paper's §3.1 formula)."""

import numpy as np
import pytest

from repro.core.fitness import FitnessParams, fitness_array, rule_fitness


class TestParams:
    def test_rejects_nonpositive_emax(self):
        with pytest.raises(ValueError):
            FitnessParams(e_max=0.0)
        with pytest.raises(ValueError):
            FitnessParams(e_max=-1.0)
        with pytest.raises(ValueError):
            FitnessParams(e_max=np.inf)

    def test_rejects_positive_fmin(self):
        with pytest.raises(ValueError, match="f_min"):
            FitnessParams(e_max=1.0, f_min=0.5)

    def test_rejects_negative_min_matches(self):
        with pytest.raises(ValueError):
            FitnessParams(e_max=1.0, min_matches=-1)


class TestRuleFitness:
    def test_paper_formula(self):
        p = FitnessParams(e_max=10.0)
        assert rule_fitness(5, 2.0, p) == pytest.approx(5 * 10.0 - 2.0)

    def test_single_match_invalid(self):
        # Paper: NR must exceed 1.
        p = FitnessParams(e_max=10.0, f_min=-1.0)
        assert rule_fitness(1, 0.0, p) == -1.0
        assert rule_fitness(0, 0.0, p) == -1.0
        assert rule_fitness(2, 0.0, p) == 20.0

    def test_error_at_emax_invalid(self):
        # Strict inequality: eR < EMAX.
        p = FitnessParams(e_max=10.0, f_min=-1.0)
        assert rule_fitness(5, 10.0, p) == -1.0
        assert rule_fitness(5, 9.999, p) > 0

    def test_infinite_error_invalid(self):
        p = FitnessParams(e_max=10.0)
        assert rule_fitness(5, np.inf, p) == p.f_min

    def test_more_matches_dominates_small_error_gap(self):
        # One extra match is worth EMAX of error — coverage dominates.
        p = FitnessParams(e_max=10.0)
        better_cover = rule_fitness(6, 9.0, p)
        better_error = rule_fitness(5, 0.0, p)
        assert better_cover > better_error

    def test_valid_fitness_always_beats_fmin(self):
        p = FitnessParams(e_max=0.5, f_min=-1.0)
        assert rule_fitness(2, 0.49, p) > p.f_min


class TestFitnessArray:
    def test_matches_scalar(self, rng):
        p = FitnessParams(e_max=3.0)
        n = rng.integers(0, 6, size=40)
        e = rng.uniform(0, 6, size=40)
        got = fitness_array(n, e, p)
        expected = np.array([rule_fitness(int(a), float(b), p) for a, b in zip(n, e)])
        assert np.allclose(got, expected)

    def test_empty_arrays(self):
        p = FitnessParams(e_max=1.0)
        assert fitness_array(np.array([]), np.array([]), p).shape == (0,)
