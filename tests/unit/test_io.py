"""Unit tests for repro.io (serialization + caches + spec hashing)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.intervals import Interval
from repro.core.predictor import RuleSystem
from repro.core.rule import Rule
from repro.io.cache import ResultCache, SeriesCache, spec_hash
from repro.io.cache import atomic_write_text
from repro.io.serialize import (
    load_rule_system,
    load_rule_system_with_metadata,
    rule_from_dict,
    rule_to_dict,
    save_rule_system,
    snapshot_digest,
    system_from_payload,
    system_to_payload,
)


def sample_rule():
    r = Rule.from_intervals(
        [Interval(0.0, 1.0), Interval.star(), Interval(-2.0, 2.0)],
        prediction=0.5,
        error=0.1,
    )
    r.coeffs = np.array([1.0, 0.0, -1.0, 0.25])
    r.n_matched = 17
    r.fitness = 4.2
    return r


class TestRuleSerialization:
    def test_roundtrip_preserves_everything(self):
        r = sample_rule()
        r2 = rule_from_dict(rule_to_dict(r))
        assert np.array_equal(r2.wildcard, r.wildcard)
        assert np.array_equal(r2.lower, r.lower)
        assert np.array_equal(r2.upper, r.upper)
        assert np.allclose(r2.coeffs, r.coeffs)
        assert r2.prediction == r.prediction
        assert r2.error == r.error
        assert r2.n_matched == r.n_matched
        assert r2.fitness == r.fitness

    def test_wildcard_infinities_survive_json(self):
        r = sample_rule()
        text = json.dumps(rule_to_dict(r))  # must not raise
        r2 = rule_from_dict(json.loads(text))
        assert np.isneginf(r2.lower[1]) and np.isposinf(r2.upper[1])

    def test_constant_rule_roundtrip(self):
        r = Rule.from_box(np.zeros(2), np.ones(2), prediction=3.0)
        r.error = 0.2
        r2 = rule_from_dict(rule_to_dict(r))
        assert r2.coeffs is None
        assert r2.prediction == 3.0


class TestRuleSystemPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        system = RuleSystem([sample_rule(), sample_rule()])
        path = tmp_path / "rules.json"
        save_rule_system(system, path)
        loaded = load_rule_system(path)
        assert len(loaded) == 2
        X = np.random.default_rng(0).uniform(-1, 1, size=(10, 3))
        a = system.predict(X)
        b = loaded.predict(X)
        assert np.allclose(
            np.nan_to_num(a.values), np.nan_to_num(b.values)
        )
        assert np.array_equal(a.predicted, b.predicted)

    def test_rejects_unknown_version(self, tmp_path):
        """Regression: version gate must be loud, for future and missing
        versions alike — never half-parse an unknown layout."""
        path = tmp_path / "bad.json"
        for bad in (99, 0, None, "2"):
            path.write_text(json.dumps({"format_version": bad, "rules": []}))
            with pytest.raises(ValueError, match="format version"):
                load_rule_system(path)

    def test_loads_legacy_version_1(self, tmp_path):
        """A v1 snapshot (no metadata block) still loads, metadata empty."""
        rule = sample_rule()
        path = tmp_path / "v1.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "n_rules": 1,
            "rules": [rule_to_dict(rule)],
        }))
        system, metadata = load_rule_system_with_metadata(path)
        assert len(system) == 1 and metadata == {}

    def test_metadata_roundtrip(self, tmp_path):
        """Regression: snapshots used to drop everything beyond the rule
        list — construction context (horizon, d, lineage) now survives."""
        path = tmp_path / "meta.json"
        meta = {"horizon": 4, "d": 3, "dataset": "venice",
                "notes": {"e_max": 25.0}}
        save_rule_system(RuleSystem([sample_rule()]), path, metadata=meta)
        system, loaded = load_rule_system_with_metadata(path)
        assert loaded == meta
        assert len(system) == 1
        # the plain loader still works and ignores metadata
        assert len(load_rule_system(path)) == 1

    def test_rule_count_mismatch_rejected(self, tmp_path):
        """A truncated rule list must not load quietly."""
        path = tmp_path / "truncated.json"
        payload = system_to_payload(RuleSystem([sample_rule(), sample_rule()]))
        payload["rules"] = payload["rules"][:1]
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="declares 2 rules"):
            load_rule_system(path)

    def test_snapshot_digest_stable_across_json_roundtrip(self):
        payload = system_to_payload(
            RuleSystem([sample_rule()]), metadata={"horizon": 2}
        )
        rehydrated = json.loads(json.dumps(payload))
        assert snapshot_digest(payload) == snapshot_digest(rehydrated)

    def test_non_json_native_metadata_digest_still_stable(self):
        """Regression: a tuple (or int dict key) in metadata used to make
        the save-time digest differ from the digest of the re-read file
        — permanently bricking the registered version with a spurious
        integrity failure.  The payload is now normalized up front."""
        payload = system_to_payload(
            RuleSystem([sample_rule()]),
            metadata={"range": (0, 1), "horizons": {1: "a", 4: "b"}},
        )
        rehydrated = json.loads(json.dumps(payload))
        assert payload == rehydrated
        assert snapshot_digest(payload) == snapshot_digest(rehydrated)

    def test_snapshot_digest_sensitive_to_any_field(self):
        payload = system_to_payload(RuleSystem([sample_rule()]))
        base = snapshot_digest(payload)
        tampered = json.loads(json.dumps(payload))
        tampered["rules"][0]["prediction"] = 123.0
        assert snapshot_digest(tampered) != base
        tampered2 = json.loads(json.dumps(payload))
        tampered2["metadata"]["note"] = "x"
        assert snapshot_digest(tampered2) != base

    def test_save_returns_digest_of_written_payload(self, tmp_path):
        path = tmp_path / "sys.json"
        digest = save_rule_system(RuleSystem([sample_rule()]), path)
        assert digest == snapshot_digest(json.loads(path.read_text()))

    def test_payload_roundtrip_in_memory(self):
        system = RuleSystem([sample_rule()])
        loaded, meta = system_from_payload(
            system_to_payload(system, metadata={"k": 1})
        )
        assert meta == {"k": 1} and len(loaded) == 1

    def test_empty_system(self, tmp_path):
        path = tmp_path / "empty.json"
        save_rule_system(RuleSystem([]), path)
        assert len(load_rule_system(path)) == 0


class TestAtomicWriteText:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        # no tmp litter left behind
        assert list(tmp_path.iterdir()) == [path]


class TestSeriesCache:
    def test_miss_then_hit(self, tmp_path):
        cache = SeriesCache(tmp_path)
        assert cache.get("mg", {"n": 10}) is None
        calls = []

        def factory():
            calls.append(1)
            return np.arange(10, dtype=float)

        a = cache.get_or_create("mg", {"n": 10}, factory)
        b = cache.get_or_create("mg", {"n": 10}, factory)
        assert np.array_equal(a, b)
        assert len(calls) == 1

    def test_different_params_different_files(self, tmp_path):
        cache = SeriesCache(tmp_path)
        p1 = cache.put("mg", {"n": 10}, np.zeros(10))
        p2 = cache.put("mg", {"n": 20}, np.zeros(20))
        assert p1 != p2

    def test_corrupt_file_treated_as_miss(self, tmp_path):
        cache = SeriesCache(tmp_path)
        path = cache.path_for("mg", {"n": 5})
        path.write_text("not an npy file")
        assert cache.get("mg", {"n": 5}) is None
        assert not path.exists()  # corrupt file removed

    def test_clear(self, tmp_path):
        cache = SeriesCache(tmp_path)
        cache.put("a", {}, np.zeros(3))
        cache.put("b", {}, np.zeros(3))
        assert cache.clear() == 2
        assert cache.get("a", {}) is None

    def test_regression_large_array_params_do_not_collide(self, tmp_path):
        """Regression: keys once went through ``str()``, whose elided
        form of a large array (``[0. 0. ... 0.]``) is identical for two
        arrays differing only in interior values — a guaranteed cache
        collision for any spec embedding a series or noise realisation.
        """
        a = np.zeros(10_000)
        b = np.zeros(10_000)
        b[5_000] = 1e-9  # invisible to the elided str() form
        assert str(a) == str(b)  # the pre-fix key ingredient collides
        cache = SeriesCache(tmp_path)
        assert cache.path_for("mg", {"base": a}) != cache.path_for(
            "mg", {"base": b}
        )

    def test_regression_nested_noise_level_changes_key(self, tmp_path):
        """Two dataset specs differing only in a nested noise kwarg
        must map to different cache files."""
        cache = SeriesCache(tmp_path)
        p1 = cache.path_for("mackey", {"dataset": {"noise_sigma": 0.02}})
        p2 = cache.path_for("mackey", {"dataset": {"noise_sigma": 0.05}})
        assert p1 != p2


@dataclasses.dataclass(frozen=True)
class _Spec:
    sigma: float
    n: int = 100


class TestSpecHash:
    def test_deterministic(self):
        assert spec_hash({"a": 1, "b": (2.0, "x")}) == spec_hash(
            {"b": (2.0, "x"), "a": 1}
        )

    def test_value_sensitivity(self):
        base = spec_hash(_Spec(sigma=0.05))
        assert spec_hash(_Spec(sigma=0.051)) != base
        assert spec_hash(_Spec(sigma=0.05, n=101)) != base

    def test_type_tagging(self):
        assert spec_hash((1, 2)) != spec_hash([1, 2])
        assert spec_hash(1) != spec_hash(1.0)
        assert spec_hash("1") != spec_hash(1)

    def test_numpy_scalars_hash_as_python_values(self):
        assert spec_hash(np.float64(0.25)) == spec_hash(0.25)
        assert spec_hash(np.int64(7)) == spec_hash(7)

    def test_array_bytes_matter(self):
        a = np.zeros(5_000)
        b = a.copy()
        b[2_500] = 1e-12
        assert spec_hash(a) != spec_hash(b)
        assert spec_hash(a) == spec_hash(np.zeros(5_000))

    def test_nan_and_inf_floats_are_representable(self):
        assert spec_hash(float("nan")) != spec_hash(float("inf"))
        assert spec_hash(float("nan")) == spec_hash(float("nan"))

    def test_unhashable_objects_are_rejected_loudly(self):
        """Address-bearing reprs would silently vary per process and
        defeat memoization/resume — they must raise instead."""
        with pytest.raises(TypeError, match="canonically hash"):
            spec_hash({"transform": lambda x: x})
        with pytest.raises(TypeError, match="canonically hash"):
            spec_hash(object())


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = spec_hash({"task": "t1", "seed": 3})
        assert cache.get(key) is None
        cache.put(key, {"rows": [1, 2, 3]})
        assert key in cache
        assert cache.get(key) == {"rows": [1, 2, 3]}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = spec_hash("x")
        cache.path_for(key).write_text("not a pickle")
        assert cache.get(key) is None
        assert key not in cache  # corrupt file removed

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec_hash("a"), 1)
        cache.put(spec_hash("b"), 2)
        assert cache.clear() == 2
