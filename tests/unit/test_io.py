"""Unit tests for repro.io (serialization + cache)."""

import json

import numpy as np
import pytest

from repro.core.intervals import Interval
from repro.core.predictor import RuleSystem
from repro.core.rule import Rule
from repro.io.cache import SeriesCache
from repro.io.serialize import (
    load_rule_system,
    rule_from_dict,
    rule_to_dict,
    save_rule_system,
)


def sample_rule():
    r = Rule.from_intervals(
        [Interval(0.0, 1.0), Interval.star(), Interval(-2.0, 2.0)],
        prediction=0.5,
        error=0.1,
    )
    r.coeffs = np.array([1.0, 0.0, -1.0, 0.25])
    r.n_matched = 17
    r.fitness = 4.2
    return r


class TestRuleSerialization:
    def test_roundtrip_preserves_everything(self):
        r = sample_rule()
        r2 = rule_from_dict(rule_to_dict(r))
        assert np.array_equal(r2.wildcard, r.wildcard)
        assert np.array_equal(r2.lower, r.lower)
        assert np.array_equal(r2.upper, r.upper)
        assert np.allclose(r2.coeffs, r.coeffs)
        assert r2.prediction == r.prediction
        assert r2.error == r.error
        assert r2.n_matched == r.n_matched
        assert r2.fitness == r.fitness

    def test_wildcard_infinities_survive_json(self):
        r = sample_rule()
        text = json.dumps(rule_to_dict(r))  # must not raise
        r2 = rule_from_dict(json.loads(text))
        assert np.isneginf(r2.lower[1]) and np.isposinf(r2.upper[1])

    def test_constant_rule_roundtrip(self):
        r = Rule.from_box(np.zeros(2), np.ones(2), prediction=3.0)
        r.error = 0.2
        r2 = rule_from_dict(rule_to_dict(r))
        assert r2.coeffs is None
        assert r2.prediction == 3.0


class TestRuleSystemPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        system = RuleSystem([sample_rule(), sample_rule()])
        path = tmp_path / "rules.json"
        save_rule_system(system, path)
        loaded = load_rule_system(path)
        assert len(loaded) == 2
        X = np.random.default_rng(0).uniform(-1, 1, size=(10, 3))
        a = system.predict(X)
        b = loaded.predict(X)
        assert np.allclose(
            np.nan_to_num(a.values), np.nan_to_num(b.values)
        )
        assert np.array_equal(a.predicted, b.predicted)

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "rules": []}))
        with pytest.raises(ValueError, match="version"):
            load_rule_system(path)

    def test_empty_system(self, tmp_path):
        path = tmp_path / "empty.json"
        save_rule_system(RuleSystem([]), path)
        assert len(load_rule_system(path)) == 0


class TestSeriesCache:
    def test_miss_then_hit(self, tmp_path):
        cache = SeriesCache(tmp_path)
        assert cache.get("mg", {"n": 10}) is None
        calls = []

        def factory():
            calls.append(1)
            return np.arange(10, dtype=float)

        a = cache.get_or_create("mg", {"n": 10}, factory)
        b = cache.get_or_create("mg", {"n": 10}, factory)
        assert np.array_equal(a, b)
        assert len(calls) == 1

    def test_different_params_different_files(self, tmp_path):
        cache = SeriesCache(tmp_path)
        p1 = cache.put("mg", {"n": 10}, np.zeros(10))
        p2 = cache.put("mg", {"n": 20}, np.zeros(20))
        assert p1 != p2

    def test_corrupt_file_treated_as_miss(self, tmp_path):
        cache = SeriesCache(tmp_path)
        path = cache.path_for("mg", {"n": 5})
        path.write_text("not an npy file")
        assert cache.get("mg", {"n": 5}) is None
        assert not path.exists()  # corrupt file removed

    def test_clear(self, tmp_path):
        cache = SeriesCache(tmp_path)
        cache.put("a", {}, np.zeros(3))
        cache.put("b", {}, np.zeros(3))
        assert cache.clear() == 2
        assert cache.get("a", {}) is None
