"""Unit tests for RBF machinery, RAN and MRAN baselines."""

import numpy as np
import pytest

from repro.baselines.mran import MRANForecaster, MRANParams
from repro.baselines.ran import RANForecaster, RANParams
from repro.baselines.rbf_common import RBFUnits
from repro.series.noise import sine_series
from repro.series.windowing import WindowDataset


class TestRBFUnits:
    def test_empty_network_outputs_bias(self):
        u = RBFUnits(dim=3)
        u.bias = 2.5
        assert u.output(np.zeros(3)) == 2.5
        assert np.allclose(u.batch_output(np.zeros((4, 3))), 2.5)

    def test_single_unit_peak_at_center(self):
        u = RBFUnits(dim=2)
        u.add_unit(np.array([1.0, 1.0]), alpha=3.0, sigma=0.5)
        at_center = u.output(np.array([1.0, 1.0]))
        away = u.output(np.array([2.0, 2.0]))
        assert at_center == pytest.approx(3.0)
        assert away < at_center

    def test_batch_matches_scalar(self, rng):
        u = RBFUnits(dim=4)
        for _ in range(5):
            u.add_unit(rng.uniform(size=4), rng.normal(), 0.3 + rng.uniform())
        X = rng.uniform(size=(20, 4))
        batch = u.batch_output(X)
        scalar = np.array([u.output(x) for x in X])
        assert np.allclose(batch, scalar)

    def test_growth_beyond_capacity(self, rng):
        u = RBFUnits(dim=2, capacity=2)
        for i in range(10):
            u.add_unit(rng.uniform(size=2), float(i), 0.5)
        assert u.n_units == 10
        assert u.alphas.tolist() == [float(i) for i in range(10)]

    def test_remove_units(self, rng):
        u = RBFUnits(dim=2)
        for i in range(4):
            u.add_unit(np.full(2, float(i)), float(i), 0.5)
        u.remove_units(np.array([True, False, True, False]))
        assert u.n_units == 2
        assert u.alphas.tolist() == [0.0, 2.0]

    def test_nearest_center_distance(self):
        u = RBFUnits(dim=2)
        assert u.nearest_center_distance(np.zeros(2)) == np.inf
        u.add_unit(np.array([3.0, 4.0]), 1.0, 1.0)
        assert u.nearest_center_distance(np.zeros(2)) == pytest.approx(5.0)

    def test_lms_update_reduces_error(self, rng):
        u = RBFUnits(dim=2)
        u.add_unit(np.array([0.5, 0.5]), 0.0, 1.0)
        x, y = np.array([0.5, 0.5]), 2.0
        for _ in range(200):
            err = y - u.output(x)
            u.lms_update(x, err, 0.1)
        assert abs(y - u.output(x)) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            RBFUnits(dim=0)
        u = RBFUnits(dim=2)
        with pytest.raises(ValueError):
            u.add_unit(np.zeros(3), 1.0, 1.0)
        with pytest.raises(ValueError):
            u.add_unit(np.zeros(2), 1.0, 0.0)
        with pytest.raises(ValueError):
            u.remove_units(np.array([True]))


@pytest.fixture
def mg_like_windows():
    tr = WindowDataset.from_series(
        sine_series(500, period=35, noise_sigma=0.01, seed=3), 5, 1
    )
    va = WindowDataset.from_series(
        sine_series(150, period=35, noise_sigma=0.01, seed=4), 5, 1
    )
    return tr, va


class TestRAN:
    def test_allocates_units_then_learns(self, mg_like_windows):
        tr, va = mg_like_windows
        model = RANForecaster(RANParams())
        model.fit(tr.X, tr.y)
        assert model.n_units > 3
        err = float(np.sqrt(np.mean((model.predict(va.X) - va.y) ** 2)))
        assert err < 0.15

    def test_novelty_radius_decays(self):
        model = RANForecaster(RANParams(delta_max=1.0, delta_min=0.1, tau_delta=10.0))
        assert model._delta(0) == pytest.approx(1.0)
        assert model._delta(10_000) == pytest.approx(0.1)
        assert model._delta(10) < model._delta(5)

    def test_max_units_respected(self, mg_like_windows):
        tr, _ = mg_like_windows
        model = RANForecaster(RANParams(max_units=5, epsilon=1e-9))
        model.fit(tr.X, tr.y)
        assert model.n_units <= 5

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RANForecaster().predict(np.zeros((2, 5)))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            RANParams(epsilon=0.0)
        with pytest.raises(ValueError):
            RANParams(delta_min=2.0, delta_max=1.0)
        with pytest.raises(ValueError):
            RANParams(max_units=0)


class TestMRAN:
    def test_fits_and_prunes(self, mg_like_windows):
        tr, va = mg_like_windows
        model = MRANForecaster(MRANParams(
            pruning_threshold=0.05, pruning_window=30, epochs=1,
        ))
        model.fit(tr.X, tr.y)
        assert model.n_units > 0
        err = float(np.sqrt(np.mean((model.predict(va.X) - va.y) ** 2)))
        assert err < 0.25

    def test_rms_criterion_blocks_growth(self, mg_like_windows):
        """A huge RMS threshold forbids all allocation."""
        tr, _ = mg_like_windows
        model = MRANForecaster(MRANParams(e_rms_threshold=1e9))
        model.fit(tr.X, tr.y)
        assert model.n_units == 0

    def test_pruning_counts(self, mg_like_windows):
        tr, _ = mg_like_windows
        aggressive = MRANForecaster(MRANParams(
            pruning_threshold=0.5, pruning_window=5, epochs=1,
        ))
        aggressive.fit(tr.X, tr.y)
        assert aggressive.pruned_total > 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            MRANParams(rms_window=0)
        with pytest.raises(ValueError):
            MRANParams(pruning_window=0)
