"""Unit tests for repro.analysis.stats (bootstrap + paired tests)."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_metric, paired_comparison
from repro.metrics.errors import mae, rmse


class TestBootstrap:
    def test_interval_contains_estimate(self, rng):
        t = rng.normal(size=300)
        p = t + rng.normal(0, 0.3, size=300)
        ci = bootstrap_metric(t, p, seed=1, n_resamples=500)
        assert ci.lower <= ci.estimate <= ci.upper
        assert ci.estimate == pytest.approx(rmse(t, p))

    def test_tighter_with_more_data(self, rng):
        def width(n):
            t = rng.normal(size=n)
            p = t + rng.normal(0, 0.5, size=n)
            ci = bootstrap_metric(t, p, seed=2, n_resamples=400)
            return ci.upper - ci.lower

        assert width(2000) < width(50)

    def test_deterministic_given_seed(self, rng):
        t = rng.normal(size=100)
        p = t + 0.1
        a = bootstrap_metric(t, p, seed=7, n_resamples=200)
        b = bootstrap_metric(t, p, seed=7, n_resamples=200)
        assert a.lower == b.lower and a.upper == b.upper

    def test_custom_metric(self, rng):
        t = rng.normal(size=100)
        p = t + rng.normal(0, 0.2, size=100)
        ci = bootstrap_metric(t, p, metric=mae, seed=1, n_resamples=200)
        assert ci.estimate == pytest.approx(mae(t, p))

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_metric(np.zeros(1), np.zeros(1))
        with pytest.raises(ValueError):
            bootstrap_metric(np.zeros(10), np.zeros(9))
        with pytest.raises(ValueError):
            bootstrap_metric(np.zeros(10), np.zeros(10), confidence=1.5)

    def test_str_formatting(self, rng):
        t = rng.normal(size=50)
        ci = bootstrap_metric(t, t + 0.1, seed=1, n_resamples=100)
        assert "CI" in str(ci)


class TestPairedComparison:
    def test_clear_winner_is_significant(self, rng):
        t = rng.normal(size=400)
        good = t + rng.normal(0, 0.05, size=400)
        bad = t + rng.normal(0, 0.8, size=400)
        res = paired_comparison(t, good, bad)
        assert res.a_mean_abs < res.b_mean_abs
        assert res.a_wins > res.b_wins
        assert res.significant

    def test_identical_predictions_not_significant(self, rng):
        t = rng.normal(size=100)
        p = t + rng.normal(0, 0.3, size=100)
        res = paired_comparison(t, p, p.copy())
        assert res.p_value == 1.0
        assert not res.significant
        assert res.a_wins == res.b_wins == 0

    def test_common_subset_only(self, rng):
        t = rng.normal(size=100)
        a = t + 0.1
        b = t - 0.1
        a[:50] = np.nan  # A abstains on the first half
        res = paired_comparison(t, a, b)
        assert res.n_common == 50

    def test_extra_mask(self, rng):
        t = rng.normal(size=100)
        a, b = t + 0.1, t - 0.1
        mask = np.zeros(100, dtype=bool)
        mask[:30] = True
        res = paired_comparison(t, a, b, mask=mask)
        assert res.n_common == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_comparison(np.zeros(5), np.zeros(4), np.zeros(5))
        nan = np.full(10, np.nan)
        with pytest.raises(ValueError, match="common"):
            paired_comparison(np.zeros(10), nan, np.zeros(10))
