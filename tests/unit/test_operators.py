"""Unit tests for repro.core.operators (crossover + mutation, §3.1)."""

import numpy as np
import pytest

from repro.core.config import MutationParams
from repro.core.operators import _edit_interval, mutate, uniform_crossover
from repro.core.rule import Rule


def parent_pair():
    a = Rule.from_box(np.array([0.0, 10.0, 20.0]), np.array([1.0, 11.0, 21.0]))
    b = Rule.from_box(np.array([100.0, 110.0, 120.0]), np.array([101.0, 111.0, 121.0]))
    return a, b


class TestCrossover:
    def test_genes_come_from_parents(self, rng):
        a, b = parent_pair()
        for _ in range(20):
            child = uniform_crossover(a, b, rng)
            for i in range(3):
                from_a = child.lower[i] == a.lower[i] and child.upper[i] == a.upper[i]
                from_b = child.lower[i] == b.lower[i] and child.upper[i] == b.upper[i]
                assert from_a or from_b

    def test_offspring_unevaluated(self, rng):
        a, b = parent_pair()
        a.fitness, b.fitness = 5.0, 6.0
        child = uniform_crossover(a, b, rng)
        assert child.fitness == -np.inf
        assert child.match_mask is None
        assert np.isnan(child.prediction)

    def test_both_parents_contribute_eventually(self, rng):
        a, b = parent_pair()
        saw_a = saw_b = False
        for _ in range(50):
            child = uniform_crossover(a, b, rng)
            if child.lower[0] == a.lower[0]:
                saw_a = True
            else:
                saw_b = True
        assert saw_a and saw_b

    def test_wildcard_state_inherited(self, rng):
        a, b = parent_pair()
        a.wildcard[1] = True
        child = uniform_crossover(a, b, rng)
        if child.wildcard[1]:
            assert True  # inherited from a
        else:
            assert child.lower[1] == b.lower[1]

    def test_arity_mismatch(self, rng):
        a, _ = parent_pair()
        c = Rule.from_box(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="arity"):
            uniform_crossover(a, c, rng)


class TestEditInterval:
    def test_enlarge(self):
        assert _edit_interval(0.0, 1.0, "enlarge", 0.5) == (-0.5, 1.5)

    def test_shrink_never_inverts(self):
        lo, hi = _edit_interval(0.0, 1.0, "shrink", 10.0)
        assert lo <= hi
        assert lo == pytest.approx(0.5) and hi == pytest.approx(0.5)

    def test_shrink_full_collapse_rounding(self):
        """Regression: `lo + s` vs `hi - s` can round one ulp apart.

        With lo=0.05, hi=3.0 the half-width collapse used to produce
        lower=1.5250000000000001 > upper=1.525, an inverted interval
        that crashes Rule.copy() (and island migration) downstream.
        """
        lo, hi = _edit_interval(0.05, 3.0, "shrink", 2.0)
        assert lo <= hi

    def test_shift(self):
        assert _edit_interval(0.0, 1.0, "shift_up", 0.25) == (0.25, 1.25)
        assert _edit_interval(0.0, 1.0, "shift_down", 0.25) == (-0.25, 0.75)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            _edit_interval(0.0, 1.0, "explode", 0.1)


class TestMutate:
    def test_preserves_invariant(self, rng):
        params = MutationParams(rate=1.0, scale=0.5)
        for _ in range(30):
            rule = Rule.from_box(np.zeros(6), np.ones(6))
            mutate(rule, params, (0.0, 1.0), rng)
            ok = rule.wildcard | (rule.lower <= rule.upper)
            assert ok.all()

    def test_rate_zero_is_identity(self, rng):
        rule = Rule.from_box(np.zeros(4), np.ones(4))
        rule.fitness = 3.0
        params = MutationParams(rate=0.0)
        mutate(rule, params, (0.0, 1.0), rng)
        assert np.all(rule.lower == 0.0) and np.all(rule.upper == 1.0)
        assert rule.fitness == 3.0  # untouched → caches kept

    def test_changed_rule_is_invalidated(self, rng):
        params = MutationParams(rate=1.0, p_wildcard_on=0.0)
        rule = Rule.from_box(np.zeros(8), np.ones(8))
        rule.fitness = 3.0
        mutate(rule, params, (0.0, 1.0), rng)
        assert rule.fitness == -np.inf

    def test_wildcard_toggle_on(self, rng):
        params = MutationParams(rate=1.0, p_wildcard_on=1.0)
        rule = Rule.from_box(np.zeros(5), np.ones(5))
        mutate(rule, params, (0.0, 1.0), rng)
        assert rule.wildcard.all()
        assert np.all(np.isneginf(rule.lower))

    def test_wildcard_toggle_off_reseeds_in_range(self, rng):
        params = MutationParams(rate=1.0, p_wildcard_off=1.0)
        from repro.core.intervals import Interval

        rule = Rule.from_intervals([Interval.star()] * 5)
        mutate(rule, params, (2.0, 3.0), rng)
        concrete = ~rule.wildcard
        assert concrete.any()
        assert np.all(rule.lower[concrete] >= 2.0)
        assert np.all(rule.upper[concrete] <= 3.0)

    def test_step_bounded_by_scale(self, rng):
        params = MutationParams(rate=1.0, scale=0.1, p_wildcard_on=0.0)
        rule = Rule.from_box(np.full(4, 0.4), np.full(4, 0.6))
        mutate(rule, params, (0.0, 1.0), rng)
        # max change per bound = scale * range = 0.1
        assert np.all(rule.lower >= 0.4 - 0.1 - 1e-12)
        assert np.all(rule.upper <= 0.6 + 0.1 + 1e-12)
