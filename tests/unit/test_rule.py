"""Unit tests for repro.core.rule."""

import numpy as np
import pytest

from repro.core.intervals import Interval
from repro.core.rule import Rule


def make_rule():
    return Rule.from_intervals(
        [Interval(0, 10), Interval.star(), Interval(-5, 5)], prediction=3.0
    )


class TestConstruction:
    def test_from_intervals(self):
        r = make_rule()
        assert r.n_lags == 3
        assert r.wildcard.tolist() == [False, True, False]

    def test_from_box(self):
        r = Rule.from_box(np.zeros(4), np.ones(4))
        assert r.n_lags == 4
        assert not r.wildcard.any()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="share a shape"):
            Rule(np.zeros(3), np.zeros(2), np.zeros(3, dtype=bool))

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError, match="lower > upper"):
            Rule(np.array([2.0]), np.array([1.0]), np.array([False]))

    def test_inverted_bounds_ok_under_wildcard(self):
        r = Rule(np.array([2.0]), np.array([1.0]), np.array([True]))
        assert r.wildcard[0]

    def test_2d_bounds_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Rule(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2), dtype=bool))


class TestMatching:
    def test_matches_respects_wildcard(self):
        r = make_rule()
        assert r.matches([5.0, 12345.0, 0.0])
        assert not r.matches([11.0, 0.0, 0.0])

    def test_matches_inclusive(self):
        r = make_rule()
        assert r.matches([0.0, 0.0, -5.0])
        assert r.matches([10.0, 0.0, 5.0])

    def test_matches_wrong_arity(self):
        with pytest.raises(ValueError, match="arity"):
            make_rule().matches([1.0, 2.0])


class TestOutput:
    def test_constant_output(self):
        r = make_rule()
        out = r.output(np.zeros((4, 3)))
        assert np.allclose(out, 3.0)

    def test_linear_output(self):
        r = make_rule()
        r.coeffs = np.array([1.0, 0.0, 2.0, 0.5])  # a0,a1,a2,intercept
        out = r.output(np.array([[1.0, 9.0, 2.0]]))
        assert out[0] == pytest.approx(1.0 + 4.0 + 0.5)

    def test_output_accepts_1d(self):
        r = make_rule()
        assert r.output(np.zeros(3)).shape == (1,)


class TestEncoding:
    def test_encode_matches_paper_layout(self):
        r = make_rule()
        r.error = 0.5
        flat = r.encode()
        assert flat == (0.0, 10.0, "*", "*", -5.0, 5.0, 3.0, 0.5)

    def test_decode_roundtrip(self):
        r = make_rule()
        r.error = 1.25
        r2 = Rule.decode(r.encode())
        assert np.array_equal(r2.wildcard, r.wildcard)
        assert r2.prediction == r.prediction
        assert r2.error == r.error
        non_wild = ~r.wildcard
        assert np.array_equal(r2.lower[non_wild], r.lower[non_wild])

    def test_decode_bad_length(self):
        with pytest.raises(ValueError):
            Rule.decode((1.0, 2.0, 3.0))


class TestLifecycle:
    def test_copy_is_deep(self):
        r = make_rule()
        r.match_mask = np.array([True, False])
        c = r.copy()
        c.lower[0] = -99.0
        c.match_mask[0] = False
        assert r.lower[0] == 0.0
        assert r.match_mask[0]

    def test_invalidate_clears_predicting_part(self):
        r = make_rule()
        r.coeffs = np.ones(4)
        r.fitness = 5.0
        r.match_mask = np.ones(3, dtype=bool)
        r.invalidate()
        assert r.coeffs is None
        assert r.fitness == -np.inf
        assert r.match_mask is None
        assert not r.is_evaluated

    def test_describe_skips_wildcards(self):
        text = make_rule().describe()
        assert "y2" not in text
        assert "y1" in text and "y3" in text

    def test_volume_log(self):
        r = Rule.from_intervals([Interval(0, 2), Interval(0, 4)])
        assert r.volume_log == pytest.approx(np.log(2) + np.log(4))
        all_wild = Rule.from_intervals([Interval.star()])
        assert all_wild.volume_log == np.inf
