"""Unit tests for the quick_forecast convenience API."""

import numpy as np
import pytest

from repro.forecast import quick_forecast
from repro.series import SplitSeries
from repro.series.noise import sine_series


@pytest.fixture
def sine_split():
    return SplitSeries(
        name="sine",
        train=sine_series(500, period=40, noise_sigma=0.02, seed=1),
        validation=sine_series(200, period=40, noise_sigma=0.02, seed=2),
        scaler=None,
    )


class TestQuickForecast:
    def test_end_to_end(self, sine_split):
        res = quick_forecast(
            sine_split, d=6, horizon=1,
            generations=300, population_size=15,
            max_executions=2, seed=0,
        )
        assert len(res.system) > 0
        assert res.score.coverage > 0.3
        assert res.score.error < 0.3
        assert res.batch.values.shape == (len(res.validation),)

    def test_compiled_flag_is_bitwise_identical(self, sine_split):
        kwargs = dict(
            d=6, horizon=1, generations=100, population_size=10,
            max_executions=1, seed=0,
        )
        fast = quick_forecast(sine_split, compiled=True, **kwargs)
        loop = quick_forecast(sine_split, compiled=False, **kwargs)
        assert np.array_equal(
            fast.batch.values, loop.batch.values, equal_nan=True
        )
        assert np.array_equal(fast.batch.predicted, loop.batch.predicted)
        assert fast.score.error == loop.score.error

    def test_default_emax_from_output_range(self, sine_split):
        res = quick_forecast(
            sine_split, d=6, horizon=1,
            generations=50, population_size=10,
            max_executions=1, seed=0,
        )
        e_max = res.multirun.executions[0].config.fitness.e_max
        # ~15% of the ±1 sine output range → about 0.3.
        assert 0.2 < e_max < 0.4

    def test_explicit_emax_respected(self, sine_split):
        res = quick_forecast(
            sine_split, d=6, horizon=1, e_max=0.123,
            generations=50, population_size=10,
            max_executions=1, seed=0,
        )
        assert res.multirun.executions[0].config.fitness.e_max == 0.123

    def test_deterministic(self, sine_split):
        kwargs = dict(d=6, horizon=1, generations=100,
                      population_size=10, max_executions=1, seed=11)
        a = quick_forecast(sine_split, **kwargs)
        b = quick_forecast(sine_split, **kwargs)
        assert np.allclose(
            np.nan_to_num(a.batch.values), np.nan_to_num(b.batch.values)
        )

    def test_horizon_forwarded(self, sine_split):
        res = quick_forecast(
            sine_split, d=6, horizon=3, generations=50,
            population_size=10, max_executions=1, seed=0,
        )
        assert res.validation.horizon == 3
