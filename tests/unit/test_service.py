"""Unit tests for repro.service (model registry + forecast gateway)."""

import json

import numpy as np
import pytest

from repro.core.predictor import RuleSystem
from repro.core.rule import Rule
from repro.service import (
    ForecastService,
    ModelRegistry,
    RegistryError,
    task_lineage,
)


def const_rule(lo, hi, prediction, d=3):
    rule = Rule.from_box(np.full(d, lo), np.full(d, hi), prediction=prediction)
    rule.error = 0.1
    return rule


@pytest.fixture
def system():
    return RuleSystem([
        const_rule(0.0, 1.0, 2.0),
        const_rule(0.0, 1.0, 4.0),
        const_rule(5.0, 6.0, 100.0),
    ])


@pytest.fixture
def other_system():
    return RuleSystem([const_rule(0.0, 1.0, -7.0)])


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestRegistration:
    def test_register_and_load_roundtrip(self, registry, system):
        record = registry.register("m", system, metadata={"horizon": 4})
        assert record.version == 1
        assert record.n_rules == 3 and record.n_lags == 3
        loaded, rec = registry.load("m", 1)
        assert rec.digest == record.digest
        assert rec.metadata == {"horizon": 4}
        X = np.random.default_rng(0).uniform(0, 1, size=(10, 3))
        a, b = system.predict(X), loaded.predict(X)
        assert np.array_equal(a.values, b.values, equal_nan=True)

    def test_versions_are_monotonic_and_immutable(
        self, registry, system, other_system
    ):
        r1 = registry.register("m", system)
        r2 = registry.register("m", other_system)
        assert (r1.version, r2.version) == (1, 2)
        assert [r.version for r in registry.versions("m")] == [1, 2]
        assert registry.load("m", 1)[0].rules[0].prediction == 2.0
        assert registry.load("m", 2)[0].rules[0].prediction == -7.0

    def test_models_listing(self, registry, system):
        assert registry.models() == []
        registry.register("b", system)
        registry.register("a", system)
        assert registry.models() == ["a", "b"]

    def test_invalid_names_rejected(self, registry, system):
        for bad in ("", "a/b", " padded ", ".", "..", "a\\b"):
            with pytest.raises(RegistryError, match="invalid model name"):
                registry.register(bad, system)

    def test_snapshots_stay_under_models_dir(self, registry, system):
        """Regression: '..'-style names must never escape models/<name>/."""
        record = registry.register("ok-name", system)
        path = (registry.root / record.path).resolve()
        assert (registry.root / "models" / "ok-name").resolve() in path.parents

    def test_concurrent_registrations_get_distinct_versions(
        self, registry, system
    ):
        """Regression: the manifest read-modify-write is serialized, so
        parallel registrations never collide on a version number or
        drop each other's manifest entry."""
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            records = list(
                pool.map(
                    lambda i: registry.register("m", system), range(8)
                )
            )
        assert sorted(r.version for r in records) == list(range(1, 9))
        assert [r.version for r in registry.versions("m")] == list(range(1, 9))
        for version in range(1, 9):
            registry.load("m", version)  # every digest verifies

    def test_unknown_model_and_version(self, registry, system):
        with pytest.raises(RegistryError, match="unknown model"):
            registry.versions("ghost")
        registry.register("m", system)
        with pytest.raises(RegistryError, match="no version 9"):
            registry.record("m", 9)

    def test_lineage_recorded(self, registry, system):
        lineage = {"task_id": "table1[h=1]", "task_key": "abc123"}
        record = registry.register("m", system, lineage=lineage)
        assert registry.record("m", record.version).lineage == lineage

    def test_task_lineage_builder(self):
        class Point:
            label = "h=1"

        class Task:
            task_id = "table1[h=1]"
            scenario = "table1"
            point = Point()
            seed = 3
            scale = "bench"

        lineage = task_lineage(Task(), task_key="deadbeef")
        assert lineage["task_id"] == "table1[h=1]"
        assert lineage["scenario"] == "table1"
        assert lineage["seed"] == 3
        assert lineage["task_key"] == "deadbeef"


class TestPromotion:
    def test_promote_and_default_load(self, registry, system, other_system):
        registry.register("m", system)
        registry.register("m", other_system)
        with pytest.raises(RegistryError, match="no promoted version"):
            registry.load("m")
        registry.promote("m", 2)
        assert registry.promoted_version("m") == 2
        assert registry.load("m")[1].version == 2

    def test_register_with_promote_flag(self, registry, system):
        registry.register("m", system, promote=True)
        assert registry.promoted_version("m") == 1

    def test_rollback_restores_previous(self, registry, system, other_system):
        registry.register("m", system, promote=True)
        registry.register("m", other_system, promote=True)
        assert registry.load("m")[1].version == 2
        record = registry.rollback("m")
        assert record.version == 1
        assert registry.load("m")[1].version == 1

    def test_rollback_without_history_fails(self, registry, system):
        registry.register("m", system, promote=True)
        with pytest.raises(RegistryError, match="no previous promotion"):
            registry.rollback("m")

    def test_repromote_is_idempotent_for_rollback(self, registry, system):
        """Promoting the already-promoted version adds no history entry."""
        registry.register("m", system, promote=True)
        registry.register("m", system, promote=True)
        registry.promote("m", 2)  # retried deploy
        assert registry.rollback("m").version == 1


class TestIntegrity:
    def test_tampered_snapshot_rejected(self, registry, system):
        record = registry.register("m", system)
        path = registry.root / record.path
        payload = json.loads(path.read_text())
        payload["rules"][0]["prediction"] = 999.0
        path.write_text(json.dumps(payload))
        with pytest.raises(RegistryError, match="integrity"):
            registry.load("m", 1)

    def test_missing_snapshot_rejected(self, registry, system):
        record = registry.register("m", system)
        (registry.root / record.path).unlink()
        with pytest.raises(RegistryError, match="missing"):
            registry.load("m", 1)

    def test_unsupported_manifest_version(self, registry, system, tmp_path):
        registry.register("m", system)
        manifest = json.loads(registry.manifest_path.read_text())
        manifest["manifest_version"] = 99
        registry.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(RegistryError, match="manifest version"):
            registry.models()


class TestGatewayBinding:
    def test_bind_requires_registry(self, system):
        service = ForecastService()
        with pytest.raises(RegistryError, match="no registry"):
            service.bind("s", "m")

    def test_bind_resolves_promoted_and_pins(
        self, registry, system, other_system
    ):
        registry.register("m", system, promote=True)
        service = ForecastService(registry)
        service.bind("s", "m")
        registry.register("m", other_system, promote=True)
        service.bind("s2", "m")          # new bind gets v2
        out = service.ingest([("s", 0.5)] * 3 + [("s2", 0.5)] * 3)
        by_stream = {f.stream: f for f in out if f.ready}
        assert by_stream["s"].version == 1      # pinned at bind time
        assert by_stream["s2"].version == 2
        assert by_stream["s"].value == pytest.approx(3.0)
        assert by_stream["s2"].value == pytest.approx(-7.0)

    def test_duplicate_stream_rejected(self, system):
        service = ForecastService()
        service.bind_system("s", system)
        with pytest.raises(ValueError, match="already bound"):
            service.bind_system("s", system)

    def test_conflicting_systems_under_one_label_rejected(
        self, system, other_system
    ):
        """Regression: a reused label must name the same system, else
        the second stream would silently be scored by the first pool."""
        service = ForecastService()
        service.bind_system("a", system, model="m")
        service.bind_system("a2", system, model="m")   # same system: fine
        with pytest.raises(ValueError, match="different system"):
            service.bind_system("b", other_system, model="m")

    def test_empty_system_rejected(self):
        service = ForecastService()
        with pytest.raises(ValueError, match="empty"):
            service.bind_system("s", RuleSystem([]))

    def test_shared_model_single_compile(self, registry, system):
        registry.register("m", system, promote=True)
        service = ForecastService(registry)
        for k in range(4):
            service.bind(f"s{k}", "m")
        assert len(service._models) == 1


class TestGatewayIngest:
    def test_unknown_stream_rejects_whole_batch(self, system):
        service = ForecastService()
        service.bind_system("s", system)
        with pytest.raises(ValueError, match="unknown stream"):
            service.ingest([("s", 0.5), ("ghost", 0.5)])
        assert service.n_events == 0
        assert service.stream_stats("s")["events"] == 0

    def test_non_finite_rejects_whole_batch_atomically(self, system):
        service = ForecastService()
        service.bind_system("s", system)
        service.ingest([("s", 0.5), ("s", 0.5)])
        with pytest.raises(ValueError, match="non-finite"):
            service.ingest([("s", 0.5), ("s", float("nan"))])
        # Nothing from the rejected batch was ingested — the stream
        # continues exactly where it left off.
        step = service.ingest_one("s", 0.5)
        assert step.t == 2 and step.ready
        assert step.value == pytest.approx(3.0)

    def test_empty_batch(self, system):
        service = ForecastService()
        service.bind_system("s", system)
        assert service.ingest([]) == []

    def test_abstention_reported(self, system):
        service = ForecastService()
        service.bind_system("s", system)
        out = service.ingest([("s", 9.0)] * 4)
        assert out[-1].ready and not out[-1].predicted
        assert np.isnan(out[-1].value)

    def test_stats_and_healthz(self, system):
        service = ForecastService()
        service.bind_system("a", system)
        service.bind_system("b", system)
        service.ingest([("a", 0.5), ("b", 9.0)] * 4)
        stats = service.stats()
        assert stats["streams"] == 2
        assert stats["events"] == 8
        assert stats["per_stream"]["a"]["coverage"] == 1.0
        assert stats["per_stream"]["b"]["coverage"] == 0.0
        assert stats["coverage"] == 0.5
        health = service.healthz()
        assert health["status"] == "ok"
        assert "per_stream" not in health
        assert json.dumps(health)  # JSON-able contract

    def test_healthz_without_streams(self):
        assert ForecastService().healthz()["status"] == "no-streams"


class TestRichZeroMatchFallback:
    """Zero-matching-rule streams through the rich (policy-attached)
    gateway path: the wire carries clean sentinels — confidence 0.0,
    dispersion 0.0 (never NaN), NaN value/interval — and the decision
    is an explicit ``no-prediction`` abstention."""

    def _rich_service(self, system):
        from repro.service import PolicyEngine, PolicySpec

        service = ForecastService()
        service.bind_system("hit", system)
        service.bind_system("miss", system)
        service.attach_policy(PolicyEngine(PolicySpec(alert_above=50.0)))
        return service

    def test_zero_match_stream_is_nan_free_in_derived_fields(self, system):
        service = self._rich_service(system)
        # 9.0-windows are ready but inside no rule's box
        out = [service.ingest_one("miss", 9.0) for _ in range(5)][-1]
        assert out.ready and not out.predicted
        assert np.isnan(out.value)
        assert out.confidence == 0.0
        assert out.dispersion == 0.0  # NaN-free: zero, not sqrt(0/0)
        assert np.isnan(out.interval_lo) and np.isnan(out.interval_hi)
        assert out.decision.action == "abstain"
        assert out.decision.reasons == ("no-prediction",)

    def test_mixed_batch_keeps_sides_apart(self, system):
        """A scoring batch mixing matched and unmatched streams keeps
        the zero-match sentinels from leaking into matched rows (and
        vice versa)."""
        service = self._rich_service(system)
        for _ in range(3):  # fill both windows (d=3)
            service.ingest([("hit", 0.5), ("miss", 9.0)])
        out = {f.stream: f for f in service.ingest(
            [("hit", 0.5), ("miss", 9.0)]
        )}
        hit, miss = out["hit"], out["miss"]
        assert hit.predicted and hit.value == pytest.approx(3.0)
        assert hit.confidence > 0.0
        assert np.isfinite(hit.interval_lo) and np.isfinite(hit.interval_hi)
        assert hit.decision.action == "pass"
        assert not miss.predicted
        assert miss.confidence == 0.0 and miss.dispersion == 0.0
        assert miss.decision.reasons == ("no-prediction",)
        pstats = service.stats()["policy"]
        # per stream: t=0,1 are warm-ups, t=2,3 score — so the miss
        # stream contributes exactly two no-prediction abstentions
        assert pstats["reasons"]["no-prediction"] == 2
        assert pstats["reasons"]["not-ready"] == 4
        assert pstats["abstentions"] == 6

    def test_zero_match_counts_never_reach_thresholds(self, system):
        """Even with an alert threshold the NaN value can never cross,
        a zero-match stream alerts on nothing and latches nothing."""
        from repro.service import PolicyEngine, PolicySpec

        service = ForecastService()
        service.bind_system("miss", system)
        engine = PolicyEngine(PolicySpec(alert_above=-100.0))
        service.attach_policy(engine)
        for _ in range(6):
            service.ingest_one("miss", 9.0)
        stats = engine.stats()
        assert stats["alerts"] == 0
        assert stats["latched_streams"] == 0
