"""Unit tests for the repro CLI (parser wiring; fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.horizons == [1, 4, 12, 24, 28, 48, 72, 96]
        assert args.scale == "bench"
        assert args.jobs == 1

    def test_table2_custom_horizons(self):
        args = build_parser().parse_args(["table2", "--horizons", "50"])
        assert args.horizons == [50]

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galaxy"])

    def test_all_subcommands_exist(self):
        for cmd in ("table1", "table2", "table3", "figure2",
                    "ablation-init", "ablation-replacement",
                    "ablation-emax", "ablation-pooling"):
            args = build_parser().parse_args([cmd])
            assert args.command == cmd

    def test_markdown_flag(self):
        args = build_parser().parse_args(["figure2", "--markdown"])
        assert args.markdown

    def test_ab_flags_default_off(self):
        args = build_parser().parse_args(["table1"])
        assert not args.no_incremental
        assert not args.no_compiled

    def test_no_compiled_flag(self):
        args = build_parser().parse_args(["table2", "--no-compiled"])
        assert args.no_compiled


class TestMainSmoke:
    def test_table2_single_horizon_runs(self, capsys, monkeypatch):
        """End-to-end CLI on the cheapest real experiment."""
        import repro.analysis.experiments as exp
        from repro.core.config import EvolutionConfig, FitnessParams

        def tiny_mackey(horizon=50, scale="bench", seed=None):
            return EvolutionConfig(
                d=6, horizon=horizon, population_size=15, generations=150,
                fitness=FitnessParams(e_max=0.2), seed=seed,
            )

        monkeypatch.setattr(exp, "mackey_config", tiny_mackey)
        rc = main(["table2", "--horizons", "50", "--seed", "1", "--markdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "MRAN" in out
        assert "| 50 |" in out  # markdown block present
