"""Unit tests for the repro CLI (parser wiring; fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.horizons == [1, 4, 12, 24, 28, 48, 72, 96]
        assert args.scale == "bench"
        assert args.jobs == 1

    def test_table2_custom_horizons(self):
        args = build_parser().parse_args(["table2", "--horizons", "50"])
        assert args.horizons == [50]

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galaxy"])

    def test_all_subcommands_exist(self):
        for cmd in ("table1", "table2", "table3", "figure2",
                    "ablation-init", "ablation-replacement",
                    "ablation-emax", "ablation-pooling"):
            args = build_parser().parse_args([cmd])
            assert args.command == cmd

    def test_markdown_flag(self):
        args = build_parser().parse_args(["figure2", "--markdown"])
        assert args.markdown

    def test_ab_flags_default_off(self):
        args = build_parser().parse_args(["table1"])
        assert not args.no_incremental
        assert not args.no_compiled

    def test_no_compiled_flag(self):
        args = build_parser().parse_args(["table2", "--no-compiled"])
        assert args.no_compiled


class TestExperimentParser:
    def test_list_defaults(self):
        args = build_parser().parse_args(["experiment", "list"])
        assert args.command == "experiment"
        assert args.exp_command == "list"
        assert not args.markdown

    def test_run_scenarios_and_options(self):
        args = build_parser().parse_args(
            ["experiment", "run", "table1", "table2", "--jobs", "4",
             "--state-dir", "/tmp/x", "--max-tasks", "2"]
        )
        assert args.exp_command == "run"
        assert args.scenarios == ["table1", "table2"]
        assert args.jobs == 4
        assert args.state_dir == "/tmp/x"
        assert args.max_tasks == 2
        assert args.seed is None  # spec seeds by default

    def test_resume_defaults(self):
        from repro.cli import DEFAULT_STATE_DIR

        args = build_parser().parse_args(["experiment", "resume"])
        assert args.exp_command == "resume"
        assert args.state_dir == DEFAULT_STATE_DIR

    def test_run_requires_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "run"])

    def test_unknown_scenario_is_an_error(self, capsys):
        rc = main(["experiment", "run", "definitely-not-registered",
                   "--no-state"])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().out


class TestExperimentMain:
    def test_list_prints_registry(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "lorenz", "noise-robustness",
                     "streaming-replay"):
            assert name in out

    def test_list_markdown_matches_catalog(self, capsys):
        from repro.analysis import catalog_markdown

        assert main(["experiment", "list", "--markdown"]) == 0
        assert capsys.readouterr().out == catalog_markdown()

    def test_max_tasks_rejected_without_state(self, capsys):
        rc = main(["experiment", "run", "smoke", "--no-state",
                   "--max-tasks", "1"])
        assert rc == 2
        assert "--no-state" in capsys.readouterr().out

    def test_repeated_scenario_names_are_deduplicated(self, capsys, tmp_path):
        state = str(tmp_path / "state")
        rc = main(["experiment", "run", "smoke", "smoke",
                   "--state-dir", state])
        assert rc == 0
        assert "3 planned" in capsys.readouterr().out

    def test_resume_without_checkpoint_is_a_clean_error(self, capsys, tmp_path):
        rc = main(["experiment", "resume", "--state-dir",
                   str(tmp_path / "nowhere")])
        assert rc == 2
        out = capsys.readouterr().out
        assert "no checkpointed plan" in out

    def test_run_resume_cycle(self, capsys, tmp_path):
        """Partial run exits 3; resume completes and reuses the cache."""
        state = str(tmp_path / "state")
        rc = main(["experiment", "run", "smoke", "--state-dir", state,
                   "--max-tasks", "1"])
        assert rc == 3
        assert "sweep incomplete" in capsys.readouterr().out
        rc = main(["experiment", "resume", "--state-dir", state])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 executed, 1 cached, 3 planned" in out


class TestMainSmoke:
    def test_table2_single_horizon_runs(self, capsys, monkeypatch):
        """End-to-end CLI on the cheapest real experiment."""
        import repro.analysis.experiments as exp
        from repro.core.config import EvolutionConfig, FitnessParams

        def tiny_mackey(horizon=50, scale="bench", seed=None):
            return EvolutionConfig(
                d=6, horizon=horizon, population_size=15, generations=150,
                fitness=FitnessParams(e_max=0.2), seed=seed,
            )

        monkeypatch.setattr(exp, "mackey_config", tiny_mackey)
        rc = main(["table2", "--horizons", "50", "--seed", "1", "--markdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "MRAN" in out
        assert "| 50 |" in out  # markdown block present
