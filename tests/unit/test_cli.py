"""Unit tests for the repro CLI (parser wiring; fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.horizons == [1, 4, 12, 24, 28, 48, 72, 96]
        assert args.scale == "bench"
        assert args.jobs is None  # serial w/o --backend, all cores with one

    def test_table2_custom_horizons(self):
        args = build_parser().parse_args(["table2", "--horizons", "50"])
        assert args.horizons == [50]

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "galaxy"])

    def test_all_subcommands_exist(self):
        for cmd in ("table1", "table2", "table3", "figure2",
                    "ablation-init", "ablation-replacement",
                    "ablation-emax", "ablation-pooling"):
            args = build_parser().parse_args([cmd])
            assert args.command == cmd

    def test_markdown_flag(self):
        args = build_parser().parse_args(["figure2", "--markdown"])
        assert args.markdown

    def test_ab_flags_default_off(self):
        args = build_parser().parse_args(["table1"])
        assert not args.no_incremental
        assert not args.no_compiled

    def test_no_compiled_flag(self):
        args = build_parser().parse_args(["table2", "--no-compiled"])
        assert args.no_compiled


class TestExperimentParser:
    def test_list_defaults(self):
        args = build_parser().parse_args(["experiment", "list"])
        assert args.command == "experiment"
        assert args.exp_command == "list"
        assert not args.markdown

    def test_run_scenarios_and_options(self):
        args = build_parser().parse_args(
            ["experiment", "run", "table1", "table2", "--jobs", "4",
             "--state-dir", "/tmp/x", "--max-tasks", "2"]
        )
        assert args.exp_command == "run"
        assert args.scenarios == ["table1", "table2"]
        assert args.jobs == 4
        assert args.state_dir == "/tmp/x"
        assert args.max_tasks == 2
        assert args.seed is None  # spec seeds by default

    def test_resume_defaults(self):
        from repro.cli import DEFAULT_STATE_DIR

        args = build_parser().parse_args(["experiment", "resume"])
        assert args.exp_command == "resume"
        assert args.state_dir == DEFAULT_STATE_DIR

    def test_run_requires_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "run"])

    def test_unknown_scenario_is_an_error(self, capsys):
        rc = main(["experiment", "run", "definitely-not-registered",
                   "--no-state"])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().out


class TestServingParser:
    def test_models_subcommands_exist(self):
        for argv in (["models", "list"],
                     ["models", "show", "m"],
                     ["models", "register", "m", "--snapshot", "f.json"],
                     ["models", "promote", "m", "2"],
                     ["models", "rollback", "m"]):
            args = build_parser().parse_args(argv)
            assert args.command == "models"
            assert args.models_command == argv[1]

    def test_models_default_registry(self):
        from repro.cli import DEFAULT_REGISTRY_DIR

        args = build_parser().parse_args(["models", "list"])
        assert args.registry == DEFAULT_REGISTRY_DIR

    def test_register_requires_snapshot(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["models", "register", "m"])

    def test_serve_bind_specs(self):
        args = build_parser().parse_args(
            ["serve", "--bind", "a=m1", "--bind", "b=m2@3",
             "--batch", "16", "--stats"]
        )
        assert args.command == "serve"
        assert args.bind == ["a=m1", "b=m2@3"]
        assert args.batch == 16 and args.stats and not args.quiet

    def test_serve_requires_bind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_parse_binds(self):
        from repro.cli import _parse_binds

        assert _parse_binds(["a=m", "b=m@2"]) == [
            ("a", "m", None), ("b", "m", 2)
        ]
        for bad in ("no-equals", "=m", "a="):
            with pytest.raises(ValueError, match="invalid --bind"):
                _parse_binds([bad])

    def test_serve_listen_flags(self):
        args = build_parser().parse_args(
            ["serve", "--bind", "a=m", "--listen", "127.0.0.1:7071",
             "--queue-size", "128", "--window-ms", "10"]
        )
        assert args.listen == "127.0.0.1:7071"
        assert args.queue_size == 128 and args.window_ms == 10.0
        defaults = build_parser().parse_args(["serve", "--bind", "a=m"])
        assert defaults.listen is None
        assert defaults.queue_size == 4096 and defaults.window_ms == 50.0

    def test_serve_sharding_flags(self):
        args = build_parser().parse_args(
            ["serve", "--bind", "a=m", "--workers", "4",
             "--metrics-top-k", "5"]
        )
        assert args.workers == 4 and args.metrics_top_k == 5
        defaults = build_parser().parse_args(["serve", "--bind", "a=m"])
        assert defaults.workers == 1 and defaults.metrics_top_k == 20

    def test_parse_listen(self):
        from repro.cli import _parse_listen

        assert _parse_listen("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert _parse_listen(":8080") == ("0.0.0.0", 8080)
        for bad in ("nohost", "h:", "h:abc", "h:-1"):
            with pytest.raises(ValueError, match="invalid --listen"):
                _parse_listen(bad)


class TestServingMain:
    @pytest.fixture
    def snapshot(self, tmp_path):
        import numpy as np

        from repro.core.predictor import RuleSystem
        from repro.core.rule import Rule
        from repro.io import save_rule_system

        rule_a = Rule.from_box(np.zeros(3), np.ones(3), prediction=2.0)
        rule_b = Rule.from_box(np.zeros(3), np.ones(3), prediction=4.0)
        rule_a.error = rule_b.error = 0.1
        path = tmp_path / "pool.json"
        save_rule_system(
            RuleSystem([rule_a, rule_b]), path, metadata={"d": 3}
        )
        return path

    def test_register_list_show_promote(self, capsys, tmp_path, snapshot):
        reg = str(tmp_path / "registry")
        assert main(["models", "register", "m1", "--registry", reg,
                     "--snapshot", str(snapshot), "--promote"]) == 0
        assert "registered m1 v1" in capsys.readouterr().out
        assert main(["models", "list", "--registry", reg]) == 0
        assert "m1" in capsys.readouterr().out
        assert main(["models", "show", "m1", "--registry", reg]) == 0
        assert "promoted" in capsys.readouterr().out

    def test_register_missing_snapshot_is_clean_error(self, capsys, tmp_path):
        rc = main(["models", "register", "m", "--registry",
                   str(tmp_path / "r"), "--snapshot",
                   str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().out

    def test_rollback_without_history_is_clean_error(
        self, capsys, tmp_path, snapshot
    ):
        reg = str(tmp_path / "registry")
        main(["models", "register", "m", "--registry", reg,
              "--snapshot", str(snapshot), "--promote"])
        capsys.readouterr()
        assert main(["models", "rollback", "m", "--registry", reg]) == 2
        assert "no previous promotion" in capsys.readouterr().out

    def test_serve_csv_replay_with_stats(self, capsys, tmp_path, snapshot):
        import json

        import numpy as np

        from repro.io import write_series_csv

        reg = str(tmp_path / "registry")
        main(["models", "register", "m", "--registry", reg,
              "--snapshot", str(snapshot), "--promote"])
        csv = tmp_path / "series.csv"
        write_series_csv(np.full(6, 0.5), csv)
        capsys.readouterr()
        assert main(["serve", "--registry", reg, "--bind", "g=m",
                     "--csv", str(csv), "--stats"]) == 0
        lines = [json.loads(ln) for ln in capsys.readouterr().out.splitlines()]
        events, stats = lines[:-1], lines[-1]
        assert len(events) == 6
        assert events[0]["value"] is None and not events[0]["ready"]
        assert events[-1]["value"] == 3.0 and events[-1]["predicted"]
        assert stats["per_stream"]["g"]["ready_steps"] == 4
        assert stats["coverage"] == 1.0

    def test_serve_csv_requires_single_stream(self, capsys, tmp_path, snapshot):
        reg = str(tmp_path / "registry")
        main(["models", "register", "m", "--registry", reg,
              "--snapshot", str(snapshot), "--promote"])
        capsys.readouterr()
        rc = main(["serve", "--registry", reg, "--bind", "a=m",
                   "--bind", "b=m", "--csv", "whatever.csv"])
        assert rc == 2
        assert "exactly one stream" in capsys.readouterr().out

    def test_serve_stdin_multi_stream(
        self, capsys, tmp_path, snapshot, monkeypatch
    ):
        import io
        import json

        reg = str(tmp_path / "registry")
        main(["models", "register", "m", "--registry", reg,
              "--snapshot", str(snapshot), "--promote"])
        capsys.readouterr()
        feed = "".join(
            f"{s},0.5\n" for _ in range(3) for s in ("a", "b")
        ) + "# comment\n\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(feed))
        assert main(["serve", "--registry", reg, "--bind", "a=m",
                     "--bind", "b=m", "--batch", "2"]) == 0
        lines = [json.loads(ln) for ln in capsys.readouterr().out.splitlines()]
        assert len(lines) == 6
        ready = [ln for ln in lines if ln["ready"]]
        assert {ln["stream"] for ln in ready} == {"a", "b"}
        assert all(ln["value"] == 3.0 for ln in ready)

    def test_serve_sharded_matches_single_process(
        self, capsys, tmp_path, snapshot, monkeypatch
    ):
        """--workers 2 replays bitwise identically to --workers 1."""
        import io
        import json

        reg = str(tmp_path / "registry")
        main(["models", "register", "m", "--registry", reg,
              "--snapshot", str(snapshot), "--promote"])
        capsys.readouterr()
        feed = "".join(
            f"{s},0.5\n" for _ in range(3) for s in ("a", "b", "c")
        )
        outputs = []
        for workers in ("1", "2"):
            monkeypatch.setattr("sys.stdin", io.StringIO(feed))
            assert main(["serve", "--registry", reg, "--bind", "a=m",
                         "--bind", "b=m", "--bind", "c=m", "--batch", "4",
                         "--workers", workers, "--stats"]) == 0
            outputs.append(capsys.readouterr().out.splitlines())
        events_1, stats_1 = outputs[0][:-1], json.loads(outputs[0][-1])
        events_2, stats_2 = outputs[1][:-1], json.loads(outputs[1][-1])
        assert events_1 == events_2  # byte-for-byte JSON lines
        for key in ("streams", "events", "ready_steps", "predicted_steps",
                    "coverage", "models", "per_stream"):
            assert stats_1[key] == stats_2[key], key
        assert len(stats_2["per_shard"]) == 2

        from repro.parallel.shm import live_segments

        assert live_segments() == []

    def test_serve_rejects_bad_workers(self, capsys, tmp_path):
        rc = main(["serve", "--registry", str(tmp_path / "r"),
                   "--bind", "a=m", "--workers", "0"])
        assert rc == 2
        assert "--workers must be >= 1" in capsys.readouterr().out

    def test_serve_unknown_model_is_clean_error(self, capsys, tmp_path):
        rc = main(["serve", "--registry", str(tmp_path / "r"),
                   "--bind", "a=ghost"])
        assert rc == 2
        assert "unknown model" in capsys.readouterr().out

    def test_serve_listen_and_csv_conflict(self, capsys, tmp_path, snapshot):
        reg = str(tmp_path / "registry")
        main(["models", "register", "m", "--registry", reg,
              "--snapshot", str(snapshot), "--promote"])
        capsys.readouterr()
        rc = main(["serve", "--registry", reg, "--bind", "a=m",
                   "--listen", "127.0.0.1:0", "--csv", "x.csv"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().out

    def _stdin_serve(
        self, capsys, tmp_path, snapshot, monkeypatch, feed,
        binds=("a=m",),
    ):
        """Run a stdin replay; return (rc, stdout)."""
        import io

        reg = str(tmp_path / "registry")
        main(["models", "register", "m", "--registry", reg,
              "--snapshot", str(snapshot), "--promote"])
        capsys.readouterr()
        monkeypatch.setattr("sys.stdin", io.StringIO(feed))
        argv = ["serve", "--registry", reg]
        for bind in binds:
            argv += ["--bind", bind]
        rc = main(argv)
        return rc, capsys.readouterr().out

    def test_serve_stdin_bad_value_names_the_line(
        self, capsys, tmp_path, snapshot, monkeypatch
    ):
        rc, out = self._stdin_serve(
            capsys, tmp_path, snapshot, monkeypatch, "a,0.5\na,zzz\n"
        )
        assert rc == 2
        assert "error: stdin line 2: bad value 'zzz'" in out

    def test_serve_stdin_nonfinite_names_the_line(
        self, capsys, tmp_path, snapshot, monkeypatch
    ):
        rc, out = self._stdin_serve(
            capsys, tmp_path, snapshot, monkeypatch,
            "a,0.5\n# comment\n\na,nan\n"
        )
        assert rc == 2
        assert "error: stdin line 4: non-finite value 'nan'" in out

    def test_serve_stdin_missing_stream_names_the_line(
        self, capsys, tmp_path, snapshot, monkeypatch
    ):
        # A bare value is only ambiguous when several streams are bound.
        rc, out = self._stdin_serve(
            capsys, tmp_path, snapshot, monkeypatch, "0.5\n",
            binds=("a=m", "b=m"),
        )
        assert rc == 2
        assert "stdin line 1" in out and "has no stream" in out


class TestAdaptCli:
    """The --adapt serve flags and the `repro adapt status` reader."""

    def test_adapt_flags_parse_with_defaults(self):
        from repro.cli import DEFAULT_ADAPT_STATE_DIR

        args = build_parser().parse_args(["serve", "--bind", "a=m",
                                          "--adapt"])
        assert args.adapt
        assert args.adapt_state_dir == DEFAULT_ADAPT_STATE_DIR
        assert args.adapt_jobs == 0
        args = build_parser().parse_args(
            ["adapt", "status", "--state-dir", "x", "--json"]
        )
        assert args.command == "adapt"
        assert args.adapt_command == "status"
        assert args.state_dir == "x" and args.json

    def test_adapt_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adapt"])

    def test_adapt_conflicts_with_sharding_and_listen(self, capsys, tmp_path):
        reg = str(tmp_path / "r")
        rc = main(["serve", "--registry", reg, "--bind", "a=m",
                   "--adapt", "--workers", "2"])
        assert rc == 2
        assert "--adapt" in capsys.readouterr().out
        rc = main(["serve", "--registry", reg, "--bind", "a=m",
                   "--adapt", "--listen", "127.0.0.1:0"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().out

    def test_status_without_state_is_clean_error(self, capsys, tmp_path):
        rc = main(["adapt", "status", "--state-dir",
                   str(tmp_path / "nowhere")])
        assert rc == 2
        assert "no adaptation status" in capsys.readouterr().out

    def test_status_renders_counters_and_timeline(self, capsys, tmp_path):
        import json

        payload = {
            "counters": {"drift_events": 2, "retrains": 1,
                         "promotions": 1, "rollbacks": 0},
            "shadow": {"m": {"challenger_version": 2, "shadow_scored": 9,
                             "champion_error": 0.5,
                             "challenger_error": 0.25}},
            "drifted": ["gauge"],
            "timeline": [{"at": 1.0, "kind": "drift", "stream": "gauge"},
                         {"at": 2.0, "kind": "promote", "version": 2}],
        }
        (tmp_path / "status.json").write_text(json.dumps(payload))
        assert main(["adapt", "status", "--state-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "drift_events" in out and "promote" in out
        assert "drifted streams: gauge" in out
        assert main(["adapt", "status", "--state-dir", str(tmp_path),
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == payload

    def test_serve_csv_wire_is_unchanged_by_adapt(
        self, capsys, tmp_path
    ):
        """Stationary replay: --adapt must not perturb wire output."""
        import json

        import numpy as np

        from repro.core.predictor import RuleSystem
        from repro.core.rule import Rule
        from repro.io import save_rule_system, write_series_csv

        rule = Rule.from_box(np.zeros(3), np.ones(3), prediction=2.0)
        rule.error = 0.1
        snapshot = tmp_path / "pool.json"
        save_rule_system(RuleSystem([rule]), snapshot, metadata={"d": 3})
        reg = str(tmp_path / "registry")
        main(["models", "register", "m", "--registry", reg,
              "--snapshot", str(snapshot), "--promote"])
        csv = tmp_path / "series.csv"
        write_series_csv(np.full(12, 0.5), csv)
        outputs = []
        for extra in ([], ["--adapt", "--adapt-state-dir",
                           str(tmp_path / "adapt")]):
            capsys.readouterr()
            assert main(["serve", "--registry", reg, "--bind", "g=m",
                         "--csv", str(csv), "--stats"] + extra) == 0
            outputs.append(capsys.readouterr().out.splitlines())
        events_plain, events_adapt = outputs[0][:-1], outputs[1][:-1]
        assert events_plain == events_adapt  # byte-for-byte
        stats = json.loads(outputs[1][-1])
        assert stats["adaptation"]["drift_events"] == 0
        assert stats["adaptation"]["promotions"] == 0
        assert (tmp_path / "adapt" / "status.json").exists()


class TestExperimentMain:
    def test_list_prints_registry(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "lorenz", "noise-robustness",
                     "streaming-replay"):
            assert name in out

    def test_list_markdown_matches_catalog(self, capsys):
        from repro.analysis import catalog_markdown

        assert main(["experiment", "list", "--markdown"]) == 0
        assert capsys.readouterr().out == catalog_markdown()

    def test_max_tasks_rejected_without_state(self, capsys):
        rc = main(["experiment", "run", "smoke", "--no-state",
                   "--max-tasks", "1"])
        assert rc == 2
        assert "--no-state" in capsys.readouterr().out

    def test_repeated_scenario_names_are_deduplicated(self, capsys, tmp_path):
        state = str(tmp_path / "state")
        rc = main(["experiment", "run", "smoke", "smoke",
                   "--state-dir", state])
        assert rc == 0
        assert "3 planned" in capsys.readouterr().out

    def test_resume_without_checkpoint_is_a_clean_error(self, capsys, tmp_path):
        rc = main(["experiment", "resume", "--state-dir",
                   str(tmp_path / "nowhere")])
        assert rc == 2
        out = capsys.readouterr().out
        assert "no checkpointed plan" in out

    def test_run_resume_cycle(self, capsys, tmp_path):
        """Partial run exits 3; resume completes and reuses the cache."""
        state = str(tmp_path / "state")
        rc = main(["experiment", "run", "smoke", "--state-dir", state,
                   "--max-tasks", "1"])
        assert rc == 3
        assert "sweep incomplete" in capsys.readouterr().out
        rc = main(["experiment", "resume", "--state-dir", state])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 executed, 1 cached, 3 planned" in out


class TestMainSmoke:
    def test_table2_single_horizon_runs(self, capsys, monkeypatch):
        """End-to-end CLI on the cheapest real experiment."""
        import repro.analysis.experiments as exp
        from repro.core.config import EvolutionConfig, FitnessParams

        def tiny_mackey(horizon=50, scale="bench", seed=None):
            return EvolutionConfig(
                d=6, horizon=horizon, population_size=15, generations=150,
                fitness=FitnessParams(e_max=0.2), seed=seed,
            )

        monkeypatch.setattr(exp, "mackey_config", tiny_mackey)
        rc = main(["table2", "--horizons", "50", "--seed", "1", "--markdown"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "MRAN" in out
        assert "| 50 |" in out  # markdown block present


class TestBenchCli:
    """The `repro bench` surface: list, run resolution, compare gate."""

    def test_backend_flag_parses(self):
        args = build_parser().parse_args(["table1", "--backend", "shm"])
        assert args.backend == "shm"
        args = build_parser().parse_args(
            ["experiment", "run", "smoke", "--backend", "process"]
        )
        assert args.backend == "process"

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--backend", "gpu"])

    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "parallel" in out and "bench_parallel_scaling.py" in out

    def test_bench_run_unknown_area(self, capsys):
        assert main(["bench", "run", "nonsense"]) == 2
        assert "unknown bench area" in capsys.readouterr().out

    def test_bench_run_missing_dir(self, capsys, tmp_path):
        rc = main(["bench", "run", "parallel", "--bench-dir",
                   str(tmp_path / "nope")])
        assert rc == 2
        assert "missing" in capsys.readouterr().out

    def _write_trajectories(self, tmp_path, speedup):
        from repro.bench import BenchResult, record, trajectory_path

        base = tmp_path / "base"
        cur = tmp_path / "cur"
        record(BenchResult(name="x", area="parallel", scale="bench",
                           speedup={"s": 2.0}), root=base)
        record(BenchResult(name="x", area="parallel", scale="bench",
                           speedup={"s": speedup}), root=cur)
        return (trajectory_path("parallel", base),
                trajectory_path("parallel", cur))

    def test_bench_compare_clean(self, capsys, tmp_path):
        base, cur = self._write_trajectories(tmp_path, 2.0)
        rc = main(["bench", "compare", "--baseline", str(base),
                   "--current", str(cur)])
        assert rc == 0
        assert "0 regression" in capsys.readouterr().out

    def test_bench_compare_regression_exits_nonzero(self, capsys, tmp_path):
        base, cur = self._write_trajectories(tmp_path, 1.0)
        rc = main(["bench", "compare", "--baseline", str(base),
                   "--current", str(cur), "--tolerance", "0.25"])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_compare_unreadable_baseline(self, capsys, tmp_path):
        bad = tmp_path / "BENCH_parallel.json"
        bad.write_text("{broken")
        rc = main(["bench", "compare", "--baseline", str(bad),
                   "--current", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().out

    def test_bench_compare_multi_baseline_with_current_rejected(
        self, capsys, tmp_path
    ):
        base, cur = self._write_trajectories(tmp_path, 2.0)
        rc = main(["bench", "compare", "--baseline", str(base), str(base),
                   "--current", str(cur)])
        assert rc == 2


class TestPolicyCli:
    """`serve --policy` wiring and the `repro policy check` validator."""

    SPEC = {
        "alert_above": 2.5,
        "hysteresis": 0.2,
        "min_matches": 1,
        "max_alerts": 3,
        "rate_window": 10.0,
    }

    def _registered_model(self, tmp_path):
        import numpy as np

        from repro.core.predictor import RuleSystem
        from repro.core.rule import Rule
        from repro.io import save_rule_system

        rule_a = Rule.from_box(np.zeros(3), np.ones(3), prediction=2.0)
        rule_b = Rule.from_box(np.zeros(3), np.ones(3), prediction=4.0)
        rule_a.error = rule_b.error = 0.1
        snapshot = tmp_path / "pool.json"
        save_rule_system(
            RuleSystem([rule_a, rule_b]), snapshot, metadata={"d": 3}
        )
        reg = str(tmp_path / "registry")
        main(["models", "register", "m", "--registry", reg,
              "--snapshot", str(snapshot), "--promote"])
        return reg

    def _spec_file(self, tmp_path):
        import json

        path = tmp_path / "policy.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_policy_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--bind", "a=m", "--policy", "alerting.json"]
        )
        assert args.policy == "alerting.json"
        assert build_parser().parse_args(
            ["serve", "--bind", "a=m"]
        ).policy is None
        args = build_parser().parse_args(["policy", "check", "spec.json"])
        assert args.command == "policy"
        assert args.policy_command == "check"
        assert args.file == "spec.json"

    def test_policy_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["policy"])

    def test_policy_check_valid_spec(self, capsys, tmp_path):
        assert main(["policy", "check", self._spec_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "valid" in out and "alert_above" in out

    def test_policy_check_json_round_trips(self, capsys, tmp_path):
        import json

        from repro.service import PolicySpec

        assert main(["policy", "check", self._spec_file(tmp_path),
                     "--json"]) == 0
        dumped = json.loads(capsys.readouterr().out)
        assert PolicySpec.from_dict(dumped) == \
            PolicySpec.from_dict(self.SPEC)

    def test_policy_check_rejects_bad_specs(self, capsys, tmp_path):
        import json

        bad = [
            ({"alert_above": "high"}, "alert_above"),
            ({"no_such_field": 1}, "no_such_field"),
            ({"alert_above": 1.0, "alert_below": 2.0}, "alert_below"),
        ]
        for payload, needle in bad:
            path = tmp_path / "bad.json"
            path.write_text(json.dumps(payload))
            assert main(["policy", "check", str(path)]) == 2
            out = capsys.readouterr().out
            assert "error:" in out and needle in out, payload
        assert main(["policy", "check",
                     str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().out

    def test_serve_csv_policy_wire_matches_engine_replay(
        self, capsys, tmp_path
    ):
        """The CSV replay's decision lines must be byte-equal to a
        direct ForecastService + PolicyEngine replay of the same
        series — the CLI adds wiring, never arithmetic."""
        import json

        import numpy as np

        from repro.io import load_rule_system, write_series_csv
        from repro.service import ForecastService, PolicyEngine, PolicySpec

        reg = self._registered_model(tmp_path)
        series = np.full(8, 0.5)
        csv = tmp_path / "series.csv"
        write_series_csv(series, csv)
        capsys.readouterr()
        assert main(["serve", "--registry", reg, "--bind", "g=m",
                     "--csv", str(csv), "--policy",
                     self._spec_file(tmp_path), "--stats"]) == 0
        lines = [json.loads(ln)
                 for ln in capsys.readouterr().out.splitlines()]
        events, stats = lines[:-1], lines[-1]

        service = ForecastService()
        service.bind_system(
            "g", load_rule_system(tmp_path / "pool.json"), model="m"
        )
        engine = PolicyEngine(PolicySpec.from_dict(self.SPEC))
        service.attach_policy(engine)
        want = [f for v in series for f in service.ingest([("g", float(v))])]

        assert len(events) == len(want)
        for event, forecast in zip(events, want):
            assert event["decision"] == forecast.decision.to_dict()
            if forecast.predicted:
                assert event["value"] == forecast.value
                assert event["confidence"] == forecast.confidence
                assert event["dispersion"] == forecast.dispersion
                assert event["interval"] == [forecast.interval_lo,
                                             forecast.interval_hi]
        # prediction 3.0 crosses alert_above=2.5 once, then latches
        assert sum(
            e["decision"]["action"] == "alert" for e in events
        ) == 1
        assert stats["policy"] == engine.stats()

    def test_serve_sharded_policy_matches_single_process(
        self, capsys, tmp_path, monkeypatch
    ):
        """--workers 2 with --policy replays byte-identically to
        --workers 1, decisions and merged counters included."""
        import io
        import json

        reg = self._registered_model(tmp_path)
        spec = self._spec_file(tmp_path)
        feed = "".join(
            f"{s},0.5\n" for _ in range(4) for s in ("a", "b", "c")
        )
        capsys.readouterr()
        outputs = []
        for workers in ("1", "2"):
            monkeypatch.setattr("sys.stdin", io.StringIO(feed))
            assert main(["serve", "--registry", reg, "--bind", "a=m",
                         "--bind", "b=m", "--bind", "c=m", "--batch", "3",
                         "--workers", workers, "--policy", spec,
                         "--stats"]) == 0
            outputs.append(capsys.readouterr().out.splitlines())
        events_1, stats_1 = outputs[0][:-1], json.loads(outputs[0][-1])
        events_2, stats_2 = outputs[1][:-1], json.loads(outputs[1][-1])
        assert events_1 == events_2  # byte-for-byte JSON lines
        assert stats_1["policy"] == stats_2["policy"]
        assert stats_1["policy"]["evaluated"] == 12
        assert stats_1["policy"]["alerts"] == 3  # one latch per stream

        from repro.parallel.shm import live_segments

        assert live_segments() == []
