"""Unit tests for the scenario registry and orchestrator plumbing.

Fast paths only: spec invariants, planning, cache keys and the DAG
scheduler.  No GA executions — the execution-level properties live in
``tests/property/test_orchestrator_determinism.py`` and the parity
suite.
"""

import numpy as np
import pytest

from repro.analysis.orchestrator import (
    ExperimentOrchestrator,
    ExperimentTask,
    _apply_config_overrides,
    _ready_wave,
)
from repro.analysis.scenarios import (
    DatasetSpec,
    GridPoint,
    ScenarioSpec,
    all_scenarios,
    build_baseline,
    build_dataset,
    catalog_markdown,
    get_scenario,
    resolve_config_factory,
    scenario_names,
)
from repro.core.config import EvolutionConfig


class TestRegistryInvariants:
    def test_known_scenarios_registered(self):
        names = scenario_names()
        for expected in (
            "table1", "table2", "table3", "figure2",
            "ablation-init", "ablation-replacement", "ablation-emax",
            "ablation-pooling", "ablation-predicting",
            "lorenz", "noise-robustness", "streaming-replay",
            "venice_alerting", "smoke",
        ):
            assert expected in names

    def test_every_config_factory_resolves(self):
        for spec in all_scenarios():
            factory = resolve_config_factory(spec.config_factory)
            config = factory(horizon=spec.grid[0].horizon, scale="bench")
            assert isinstance(config, EvolutionConfig)

    def test_every_baseline_buildable(self):
        for spec in all_scenarios():
            for baseline in spec.baselines:
                model = build_baseline(baseline.name, spec.options_dict(), 0)
                assert hasattr(model, "fit") and hasattr(model, "predict")

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(
                name="x", title="", section="", kind="galaxy",
                dataset=DatasetSpec("venice"), config_factory="venice",
                grid=(GridPoint("h1", 1),), metric="rmse",
                coverage_target=0.9, max_executions=1,
            )
        with pytest.raises(ValueError, match="duplicate grid labels"):
            ScenarioSpec(
                name="x", title="", section="", kind="table",
                dataset=DatasetSpec("venice"), config_factory="venice",
                grid=(GridPoint("h1", 1), GridPoint("h1", 2)),
                metric="rmse", coverage_target=0.9, max_executions=1,
            )

    def test_paper_values_recorded_for_tables(self):
        for name in ("table1", "table2", "table3"):
            assert get_scenario(name).paper_values


class TestDatasets:
    def test_noise_level_changes_the_data(self):
        spec = DatasetSpec("noisy_mackey")
        clean = build_dataset(spec, "bench", (("sigma", 0.0),))
        noisy = build_dataset(spec, "bench", (("sigma", 0.05),))
        assert clean.train.shape == noisy.train.shape
        assert not np.array_equal(clean.train, noisy.train)
        assert not np.array_equal(clean.validation, noisy.validation)
        # Same sigma, same seed -> same realisation (cacheable).
        again = build_dataset(spec, "bench", (("sigma", 0.05),))
        assert np.array_equal(noisy.train, again.train)

    def test_dataset_construction_is_memoized_per_process(self):
        """A multi-task sweep must not regenerate the same series once
        per task (the old runners loaded each dataset once per table)."""
        spec = DatasetSpec("mackey_glass")
        assert build_dataset(spec, "bench") is build_dataset(spec, "bench")
        a = build_dataset(DatasetSpec("noisy_mackey"), "bench", (("sigma", 0.03),))
        b = build_dataset(DatasetSpec("noisy_mackey"), "bench", (("sigma", 0.03),))
        assert a is b

    def test_lorenz_dataset_is_scaled_split(self):
        data = build_dataset(DatasetSpec("lorenz"), "bench")
        assert data.train.shape[0] == 2000
        assert data.validation.shape[0] == 600
        assert 0.0 <= data.train.min() and data.train.max() <= 1.0


class TestCatalog:
    def test_deterministic(self):
        assert catalog_markdown() == catalog_markdown()

    def test_mentions_every_scenario(self):
        text = catalog_markdown()
        assert text.startswith("# Scenario catalog")
        for name in scenario_names():
            assert f"## `{name}`" in text

    def test_marks_itself_generated(self):
        assert "GENERATED FILE" in catalog_markdown()

    def test_docs_scenarios_md_in_sync(self):
        """docs/scenarios.md is generated from the registry; a registry
        change must be accompanied by regenerating it:

            PYTHONPATH=src python -m repro.cli experiment list --markdown > docs/scenarios.md
        """
        from pathlib import Path

        committed = Path(__file__).resolve().parents[2] / "docs" / "scenarios.md"
        assert committed.exists(), "docs/scenarios.md missing"
        assert committed.read_text() == catalog_markdown(), (
            "docs/scenarios.md is stale — regenerate with "
            "'repro experiment list --markdown > docs/scenarios.md'"
        )


class TestPlanning:
    def test_table1_expansion(self):
        orch = ExperimentOrchestrator()
        tasks = orch.plan(["table1"])
        spec = get_scenario("table1")
        assert [t.point.horizon for t in tasks] == [1, 4, 12, 24, 28, 48, 72, 96]
        assert all(t.seed == spec.seed for t in tasks)
        assert [t.index for t in tasks] == list(range(8))
        assert tasks[0].task_id == "table1[h1]"

    def test_grid_override_and_seed(self):
        orch = ExperimentOrchestrator()
        grid = (GridPoint("h7", 7),)
        tasks = orch.plan(
            ["table1"], seed=99, grid_overrides={"table1": grid}
        )
        assert len(tasks) == 1
        assert tasks[0].seed == 99 and tasks[0].point.horizon == 7

    def test_duplicate_plan_rejected(self):
        with pytest.raises(ValueError, match="duplicate task ids"):
            ExperimentOrchestrator().plan(["smoke", "smoke"])


class TestTaskKeys:
    def _task(self, **kwargs):
        base = dict(
            scenario="noise-robustness",
            spec=get_scenario("noise-robustness"),
            index=0,
            point=GridPoint("sigma=0.05", 50, dataset_params=(("sigma", 0.05),)),
            seed=21,
        )
        base.update(kwargs)
        return ExperimentTask(**base)

    def test_regression_noise_level_changes_key(self):
        """The satellite bugfix, end to end: two tasks differing only in
        a dataset-construction kwarg must not share a memo entry."""
        orch = ExperimentOrchestrator()
        a = self._task()
        b = self._task(
            point=GridPoint("sigma=0.10", 50, dataset_params=(("sigma", 0.10),))
        )
        assert orch.task_key(a) != orch.task_key(b)

    def test_seed_and_code_version_partition_the_cache(self):
        orch = ExperimentOrchestrator()
        assert orch.task_key(self._task()) != orch.task_key(
            self._task(seed=22)
        )
        other = ExperimentOrchestrator(code_version="v-next")
        assert orch.task_key(self._task()) != other.task_key(self._task())

    def test_identical_tasks_share_a_key(self):
        orch = ExperimentOrchestrator()
        assert orch.task_key(self._task()) == orch.task_key(self._task())

    def test_spec_change_changes_key(self):
        import dataclasses

        orch = ExperimentOrchestrator()
        spec = get_scenario("noise-robustness")
        tweaked = dataclasses.replace(spec, coverage_target=0.5)
        assert orch.task_key(self._task()) != orch.task_key(
            self._task(spec=tweaked)
        )


class TestSchedulerPieces:
    def test_ready_wave_respects_requires(self):
        spec = get_scenario("smoke")
        a = ExperimentTask(scenario="smoke", spec=spec, index=0,
                           point=GridPoint("h10", 10))
        b = ExperimentTask(
            scenario="smoke", spec=spec, index=1, point=GridPoint("h30", 30),
            requires=("smoke[h10]",),
        )
        assert _ready_wave([a, b], []) == [a]
        assert _ready_wave([b], ["smoke[h10]"]) == [b]

    def test_apply_config_overrides(self):
        config = EvolutionConfig(d=4, horizon=1)
        out = _apply_config_overrides(
            config, (("population_size", 10), ("fitness.e_max", 0.5))
        )
        assert out.population_size == 10
        assert out.fitness.e_max == 0.5
        # fitness is rebuilt from defaults, as the EMAX ablation requires
        assert out.fitness.f_min == config.fitness.__class__(e_max=0.5).f_min

    def test_nested_override_preserves_sibling_fields(self):
        config = EvolutionConfig(d=4, horizon=1)
        out = _apply_config_overrides(
            config, (("fitness.f_min", -0.5), ("mutation.rate", 0.3))
        )
        assert out.fitness.f_min == -0.5
        assert out.fitness.e_max == config.fitness.e_max  # preserved
        assert out.mutation.rate == 0.3
        assert out.mutation.scale == config.mutation.scale  # preserved
