"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import (
    EvolutionConfig,
    MutationParams,
    mackey_config,
    sunspot_config,
    venice_config,
)
from repro.core.fitness import FitnessParams


class TestMutationParams:
    def test_valid_defaults(self):
        MutationParams()

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            MutationParams(rate=1.5)
        with pytest.raises(ValueError):
            MutationParams(rate=-0.1)

    def test_scale_positive(self):
        with pytest.raises(ValueError):
            MutationParams(scale=0.0)

    def test_wildcard_probs(self):
        with pytest.raises(ValueError):
            MutationParams(p_wildcard_on=2.0)


class TestEvolutionConfig:
    def test_defaults_valid(self):
        cfg = EvolutionConfig()
        assert cfg.d == 24 and cfg.horizon == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"d": 0},
            {"horizon": 0},
            {"population_size": 1},
            {"generations": -1},
            {"tournament_rounds": 0},
            {"predicting_mode": "spline"},
            {"crowding": "nearest"},
        ],
    )
    def test_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            EvolutionConfig(**kwargs)

    def test_replace_returns_new(self):
        cfg = EvolutionConfig()
        cfg2 = cfg.replace(horizon=4)
        assert cfg2.horizon == 4 and cfg.horizon == 1

    def test_frozen(self):
        cfg = EvolutionConfig()
        with pytest.raises(Exception):
            cfg.d = 5  # type: ignore[misc]


class TestPresets:
    @pytest.mark.parametrize("factory", [venice_config, mackey_config, sunspot_config])
    def test_both_scales(self, factory):
        bench = factory(scale="bench")
        paper = factory(scale="paper")
        assert paper.generations > bench.generations
        assert isinstance(bench.fitness, FitnessParams)
        with pytest.raises(ValueError):
            factory(scale="huge")

    def test_paper_scale_matches_text(self):
        cfg = venice_config(scale="paper")
        # §4.1: populations evolved along 75 000 generations, D=24.
        assert cfg.generations == 75_000
        assert cfg.d == 24
        assert cfg.population_size == 100

    def test_horizon_forwarded(self):
        assert venice_config(horizon=96).horizon == 96
        assert mackey_config(horizon=85).horizon == 85
