"""Unit tests for repro.core.selection (3-round trials, §3.3)."""

import numpy as np
import pytest

from repro.core.rule import Rule
from repro.core.selection import roulette_select, select_parents, tournament_select


def population_with_fitness(values):
    pop = []
    for f in values:
        r = Rule.from_box(np.zeros(2), np.ones(2))
        r.fitness = f
        pop.append(r)
    return pop


class TestTournament:
    def test_prefers_fitter(self, rng):
        pop = population_with_fitness([0.0, 0.0, 0.0, 100.0])
        wins = sum(tournament_select(pop, 3, rng) == 3 for _ in range(400))
        # P(best in 3 draws) = 1-(3/4)^3 ≈ 0.578
        assert 0.45 < wins / 400 < 0.70

    def test_single_round_is_uniform(self, rng):
        pop = population_with_fitness([0.0, 100.0])
        wins = sum(tournament_select(pop, 1, rng) == 1 for _ in range(400))
        assert 0.35 < wins / 400 < 0.65

    def test_handles_negative_fitness(self, rng):
        pop = population_with_fitness([-1.0, -5.0, -3.0])
        counts = np.zeros(3)
        for _ in range(300):
            counts[tournament_select(pop, 3, rng)] += 1
        assert counts[0] > counts[1]  # least-bad favoured

    def test_empty_population(self, rng):
        with pytest.raises(ValueError):
            tournament_select([], 3, rng)

    def test_invalid_rounds(self, rng):
        with pytest.raises(ValueError):
            tournament_select(population_with_fitness([1.0]), 0, rng)


class TestRoulette:
    def test_proportional_bias(self, rng):
        pop = population_with_fitness([1.0, 3.0])
        wins = sum(roulette_select(pop, rng) == 1 for _ in range(600))
        # weights after shift: [0, 2] → index 1 always wins
        assert wins == 600

    def test_uniform_when_flat(self, rng):
        pop = population_with_fitness([2.0, 2.0, 2.0])
        picks = {roulette_select(pop, rng) for _ in range(100)}
        assert picks == {0, 1, 2}

    def test_handles_neg_inf(self, rng):
        pop = population_with_fitness([-np.inf, 1.0])
        assert roulette_select(pop, rng) in (0, 1)

    def test_empty(self, rng):
        with pytest.raises(ValueError):
            roulette_select([], rng)


class TestSelectParents:
    def test_distinct_when_possible(self, rng):
        pop = population_with_fitness([1.0, 2.0, 3.0, 4.0, 5.0])
        distinct = sum(
            a != b
            for a, b in (select_parents(pop, 3, rng) for _ in range(100))
        )
        assert distinct >= 90  # retries make collisions rare

    def test_single_individual_population(self, rng):
        pop = population_with_fitness([1.0])
        a, b = select_parents(pop, 3, rng)
        assert a == b == 0
