"""Unit tests for repro.core.initialization (§3.2)."""

import numpy as np
import pytest

from repro.core.config import EvolutionConfig, FitnessParams
from repro.core.initialization import (
    output_bins,
    random_box_rule,
    random_population,
    stratified_population,
)
from repro.core.matching import match_mask


class TestOutputBins:
    def test_edges_cover_range(self):
        edges = output_bins(-50.0, 150.0, 100)
        assert edges.shape == (101,)
        assert edges[0] == -50.0 and edges[-1] == 150.0
        widths = np.diff(edges)
        assert np.allclose(widths, 2.0)  # the paper's 2 cm example

    def test_degenerate_range_widens(self):
        edges = output_bins(5.0, 5.0, 4)
        assert edges[0] < 5.0 < edges[-1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            output_bins(0, 1, 0)
        with pytest.raises(ValueError):
            output_bins(np.nan, 1.0, 3)


class TestStratified:
    def test_population_size_exact(self, sine_dataset, tiny_config, rng):
        pop = stratified_population(sine_dataset, tiny_config, rng)
        assert len(pop) == tiny_config.population_size

    def test_rules_cover_their_bin_patterns(self, sine_dataset, tiny_config, rng):
        """Each bin rule's box must contain every pattern of its bin."""
        pop = stratified_population(sine_dataset, tiny_config, rng)
        y = sine_dataset.y
        edges = output_bins(*sine_dataset.output_range, tiny_config.population_size)
        bin_index = np.clip(
            np.searchsorted(edges, y, side="right") - 1,
            0,
            tiny_config.population_size - 1,
        )
        for b, rule in enumerate(pop):
            sel = bin_index == b
            if not sel.any():
                continue  # fallback random rule
            mask = match_mask(rule, sine_dataset.X)
            assert mask[sel].all(), f"bin {b} rule misses its own patterns"

    def test_predictions_are_bin_means(self, sine_dataset, tiny_config, rng):
        pop = stratified_population(sine_dataset, tiny_config, rng)
        y = sine_dataset.y
        edges = output_bins(*sine_dataset.output_range, tiny_config.population_size)
        bin_index = np.clip(
            np.searchsorted(edges, y, side="right") - 1,
            0,
            tiny_config.population_size - 1,
        )
        for b, rule in enumerate(pop):
            sel = bin_index == b
            if sel.any():
                assert rule.prediction == pytest.approx(float(y[sel].mean()))

    def test_empty_bins_get_random_rules(self, rng):
        # A two-valued series leaves most of 30 bins empty.
        series = np.tile([0.0, 100.0], 40).astype(float)
        from repro.series.windowing import WindowDataset

        ds = WindowDataset.from_series(series, 3, 1)
        config = EvolutionConfig(
            d=3, horizon=1, population_size=30, generations=0,
            fitness=FitnessParams(e_max=10.0),
        )
        pop = stratified_population(ds, config, rng)
        assert len(pop) == 30
        for rule in pop:
            assert np.all(rule.lower <= rule.upper)


class TestRandom:
    def test_random_box_rule_matches_its_center(self, sine_dataset, rng):
        rule = random_box_rule(sine_dataset, rng)
        # The box is centred on some window, so at least one window matches.
        assert match_mask(rule, sine_dataset.X).any()

    def test_random_population_size(self, sine_dataset, tiny_config, rng):
        pop = random_population(sine_dataset, tiny_config, rng)
        assert len(pop) == tiny_config.population_size
