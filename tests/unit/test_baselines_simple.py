"""Unit tests for the linear/naive/kNN baselines."""

import numpy as np
import pytest

from repro.baselines.base import check_Xy
from repro.baselines.knn import KNNForecaster
from repro.baselines.linear import (
    ARForecaster,
    MovingAverageForecaster,
    PersistenceForecaster,
    SeasonalNaiveForecaster,
)


class TestCheckXy:
    def test_coerces_and_validates(self):
        X, y = check_Xy([[1, 2]], [3])
        assert X.dtype == np.float64 and y.dtype == np.float64

    def test_rejects_1d_X(self):
        with pytest.raises(ValueError):
            check_Xy(np.zeros(5), np.zeros(5))

    def test_rejects_mismatched_y(self):
        with pytest.raises(ValueError):
            check_Xy(np.zeros((3, 2)), np.zeros(4))


class TestAR:
    def test_recovers_exact_ar_coefficients(self, linear_dataset):
        model = ARForecaster(ridge=0.0).fit(linear_dataset.X, linear_dataset.y)
        # x_t = 0.5 x_{t-1} + 0.3 x_{t-2} - 0.2 x_{t-3}; window order is
        # oldest-first, so coeffs = (-0.2, 0.3, 0.5).
        assert np.allclose(model.coeffs[:-1], [-0.2, 0.3, 0.5], atol=1e-8)
        assert model.coeffs[-1] == pytest.approx(0.0, abs=1e-8)

    def test_perfect_prediction_on_deterministic_ar(self, linear_dataset):
        model = ARForecaster().fit(linear_dataset.X, linear_dataset.y)
        pred = model.predict(linear_dataset.X)
        assert np.allclose(pred, linear_dataset.y, atol=1e-6)

    def test_singular_design_falls_back(self):
        X = np.ones((10, 3))  # rank-1
        y = np.arange(10, dtype=float)
        model = ARForecaster(ridge=0.0).fit(X, y)
        assert np.all(np.isfinite(model.coeffs))

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            ARForecaster().predict(np.zeros((2, 3)))


class TestNaive:
    def test_persistence(self):
        model = PersistenceForecaster().fit(np.zeros((2, 3)), np.zeros(2))
        pred = model.predict(np.array([[1.0, 2.0, 3.0]]))
        assert pred[0] == 3.0

    def test_seasonal_naive(self):
        model = SeasonalNaiveForecaster(period=2)
        model.fit(np.zeros((2, 4)), np.zeros(2))
        pred = model.predict(np.array([[10.0, 20.0, 30.0, 40.0]]))
        assert pred[0] == 30.0  # one period back from the end

    def test_seasonal_period_validation(self):
        with pytest.raises(ValueError):
            SeasonalNaiveForecaster(period=9).fit(np.zeros((2, 4)), np.zeros(2))
        with pytest.raises(ValueError):
            SeasonalNaiveForecaster(period=0).fit(np.zeros((2, 4)), np.zeros(2))

    def test_moving_average(self):
        model = MovingAverageForecaster(width=2)
        model.fit(np.zeros((2, 4)), np.zeros(2))
        pred = model.predict(np.array([[0.0, 0.0, 2.0, 4.0]]))
        assert pred[0] == 3.0

    def test_moving_average_validation(self):
        with pytest.raises(ValueError):
            MovingAverageForecaster(width=9).fit(np.zeros((2, 4)), np.zeros(2))


class TestKNN:
    def test_exact_neighbour_recall(self, rng):
        X = rng.uniform(size=(100, 4))
        y = rng.uniform(size=100)
        model = KNNForecaster(k=1).fit(X, y)
        # Querying the training points with k=1 returns their own targets.
        assert np.allclose(model.predict(X[:20]), y[:20])

    def test_uniform_vs_inverse_weighting(self, rng):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        q = np.array([[0.25]])
        uni = KNNForecaster(k=2, weighting="uniform").fit(X, y).predict(q)
        inv = KNNForecaster(k=2, weighting="inverse").fit(X, y).predict(q)
        assert uni[0] == pytest.approx(5.0)
        assert inv[0] < 5.0  # closer to the nearer target 0.0

    def test_chunked_equals_unchunked(self, rng):
        X = rng.uniform(size=(300, 3))
        y = rng.uniform(size=300)
        q = rng.uniform(size=(50, 3))
        small = KNNForecaster(k=3, chunk_size=7).fit(X, y).predict(q)
        big = KNNForecaster(k=3, chunk_size=1000).fit(X, y).predict(q)
        assert np.allclose(small, big)

    def test_validation(self):
        with pytest.raises(ValueError):
            KNNForecaster(k=0)
        with pytest.raises(ValueError):
            KNNForecaster(weighting="gaussian")
        with pytest.raises(ValueError):
            KNNForecaster(k=10).fit(np.zeros((3, 2)), np.zeros(3))

    def test_fit_copies_data(self, rng):
        X = rng.uniform(size=(30, 2))
        y = rng.uniform(size=30)
        model = KNNForecaster(k=2).fit(X, y)
        X[:] = 0.0
        assert not np.allclose(model.X_train, 0.0)
