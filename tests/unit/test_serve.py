"""Unit tests for repro.serve (streaming forecaster)."""

import numpy as np
import pytest

from repro.core.compiled import CompiledRuleSystem
from repro.core.predictor import RuleSystem
from repro.core.rule import Rule
from repro.serve import StreamingForecaster


def const_rule(lo, hi, prediction, d=3):
    rule = Rule.from_box(np.full(d, lo), np.full(d, hi), prediction=prediction)
    rule.error = 0.1
    return rule


@pytest.fixture
def system():
    return RuleSystem([
        const_rule(0.0, 1.0, 2.0),
        const_rule(0.0, 1.0, 4.0),
        const_rule(5.0, 6.0, 100.0),
    ])


class TestLifecycle:
    def test_not_ready_until_full_window(self, system):
        fc = StreamingForecaster(system)
        s0 = fc.update(0.5)
        s1 = fc.update(0.5)
        assert not s0.ready and not s1.ready
        assert np.isnan(s0.value)
        s2 = fc.update(0.5)
        assert s2.ready and s2.predicted
        assert s2.value == pytest.approx(3.0)
        assert s2.n_rules_used == 2

    def test_window_contents_oldest_first(self, system):
        fc = StreamingForecaster(system)
        assert fc.window() is None
        for v in (0.1, 0.2, 0.3, 0.4):
            fc.update(v)
        assert np.allclose(fc.window(), [0.2, 0.3, 0.4])

    def test_matches_batch_prediction(self, system):
        """Streaming step-by-step equals one batched window prediction."""
        rng = np.random.default_rng(0)
        series = rng.uniform(0, 1, size=50)
        fc = StreamingForecaster(system)
        streamed = [step.value for step in fc.extend(series) if step.ready]
        windows = np.lib.stride_tricks.sliding_window_view(series, 3)
        batch = system.predict(windows)
        assert np.array_equal(streamed, batch.values, equal_nan=True)

    def test_abstention_and_coverage(self, system):
        fc = StreamingForecaster(system)
        for _ in range(3):
            fc.update(9.0)  # outside every rule
        step = fc.update(9.0)
        assert step.ready and not step.predicted
        assert np.isnan(step.value)
        for _ in range(4):
            fc.update(0.5)
        assert 0.0 < fc.coverage < 1.0
        assert fc.n_steps == 6  # ready steps only

    def test_reset(self, system):
        fc = StreamingForecaster(system)
        fc.extend([0.5] * 5)
        fc.reset()
        assert not fc.ready
        assert fc.n_steps == 0 and fc.coverage == 0.0

    def test_reset_then_replay_reproduces_first_pass(self, system):
        """After a full pass and a reset, streaming the same series again
        (or replay()-ing it) reproduces the first pass bit for bit."""
        rng = np.random.default_rng(5)
        series = rng.uniform(0, 1.2, size=60)
        fc = StreamingForecaster(system)
        first = np.array([s.value for s in fc.extend(series)])
        first_stats = (fc.n_steps, fc.n_predicted)
        fc.reset()
        assert fc.window() is None
        second = np.array([s.value for s in fc.extend(series)])
        assert np.array_equal(first, second, equal_nan=True)
        assert (fc.n_steps, fc.n_predicted) == first_stats
        # replay() on the used forecaster agrees and stays stateless.
        replayed = fc.replay(series)
        assert np.array_equal(first, replayed, equal_nan=True)
        assert (fc.n_steps, fc.n_predicted) == first_stats

    def test_accepts_precompiled_system(self, system):
        fc = StreamingForecaster(CompiledRuleSystem(system.rules))
        fc.extend([0.5, 0.5])
        assert fc.update(0.5).value == pytest.approx(3.0)

    def test_rejects_empty_system(self):
        with pytest.raises(ValueError, match="empty"):
            StreamingForecaster(RuleSystem([]))

    def test_rejects_bad_horizon(self, system):
        with pytest.raises(ValueError, match="horizon"):
            StreamingForecaster(system, horizon=0)

    def test_rejects_non_finite_observation_before_buffering(self, system):
        fc = StreamingForecaster(system)
        fc.extend([0.5, 0.5])
        with pytest.raises(ValueError, match="non-finite"):
            fc.update(float("nan"))
        # The bad value was not ingested: the stream continues cleanly.
        step = fc.update(0.5)
        assert step.ready and step.value == pytest.approx(3.0)

    def test_nan_mid_stream_leaves_statistics_intact(self, system):
        """A rejected NaN after warm-up corrupts neither the window nor
        the coverage counters — the next window is built from the last
        D *valid* observations."""
        fc = StreamingForecaster(system)
        fc.extend([0.5, 0.5, 0.5])          # ready, 1 predicted step
        before = (fc.n_steps, fc.n_predicted, list(fc.window()))
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="non-finite"):
                fc.update(bad)
            assert (fc.n_steps, fc.n_predicted, list(fc.window())) == before
        step = fc.update(0.5)
        assert step.t == 3 and step.value == pytest.approx(3.0)
        assert fc.n_steps == 2

    def test_horizon_does_not_change_warmup_accounting(self, system):
        """Warm-up is D-1 steps regardless of horizon: the forecast made
        at step t targets t + horizon, but readiness depends only on
        the window having filled."""
        for horizon in (1, 5, 12):
            fc = StreamingForecaster(system, horizon=horizon)
            steps = fc.extend([0.5, 0.5, 0.5, 0.5])
            assert [s.ready for s in steps] == [False, False, True, True]
            assert fc.n_steps == 2           # ready steps only
            assert fc.coverage == 1.0
            assert fc.stats()["horizon"] == horizon

    def test_horizon_stream_matches_batch_windows(self, system):
        """horizon > 1 streaming equals batch prediction over the same
        windows — the horizon shifts the *target*, not the input."""
        rng = np.random.default_rng(7)
        series = rng.uniform(0, 1, size=30)
        fc = StreamingForecaster(system, horizon=4)
        streamed = [s.value for s in fc.extend(series) if s.ready]
        windows = np.lib.stride_tricks.sliding_window_view(series, 3)
        batch = system.predict(windows)
        assert np.array_equal(streamed, batch.values, equal_nan=True)


class TestReplay:
    def test_replay_equals_streaming(self, system):
        rng = np.random.default_rng(1)
        series = rng.uniform(0, 1, size=80)
        fc = StreamingForecaster(system)
        streamed = np.array([s.value for s in fc.extend(series)])
        replayed = StreamingForecaster(system).replay(series)
        assert np.array_equal(streamed, replayed, equal_nan=True)

    def test_replay_short_series(self, system):
        out = StreamingForecaster(system).replay(np.array([0.5, 0.5]))
        assert np.isnan(out).all()

    def test_replay_leaves_live_state_untouched(self, system):
        fc = StreamingForecaster(system)
        fc.replay(np.full(20, 0.5))
        assert not fc.ready and fc.n_steps == 0

    def test_replay_rejects_2d(self, system):
        with pytest.raises(ValueError, match="1-D"):
            StreamingForecaster(system).replay(np.zeros((4, 3)))


class TestRingBuffer:
    def test_long_stream_wraps_correctly(self, system):
        """Windows stay correct far past the buffer length."""
        rng = np.random.default_rng(2)
        series = rng.uniform(0, 1, size=500)
        fc = StreamingForecaster(system)
        for t, v in enumerate(series):
            fc.update(v)
            if t >= 2:
                assert np.array_equal(fc.window(), series[t - 2 : t + 1])
