"""Unit tests for repro.core.replacement (crowding, §3.3)."""

import numpy as np
import pytest

from repro.core.replacement import (
    jaccard_distances,
    nearest_phenotype_index,
    prediction_distances,
    replacement_index,
    try_replace,
)
from repro.core.rule import Rule


def rule_with(mask, prediction=0.0, fitness=0.0):
    r = Rule.from_box(np.zeros(2), np.ones(2))
    r.match_mask = np.asarray(mask, dtype=bool)
    r.prediction = prediction
    r.fitness = fitness
    return r


class TestJaccard:
    def test_identical_masks_distance_zero(self):
        m = np.array([True, False, True])
        d = jaccard_distances(m, m[None, :])
        assert d[0] == 0.0

    def test_disjoint_masks_distance_one(self):
        a = np.array([True, False, False])
        b = np.array([[False, True, True]])
        assert jaccard_distances(a, b)[0] == 1.0

    def test_half_overlap(self):
        a = np.array([True, True, False, False])
        b = np.array([[False, True, True, False]])
        # |∩|=1, |∪|=3 → d = 2/3
        assert jaccard_distances(a, b)[0] == pytest.approx(2 / 3)

    def test_both_empty_distance_zero(self):
        a = np.zeros(3, dtype=bool)
        b = np.zeros((1, 3), dtype=bool)
        assert jaccard_distances(a, b)[0] == 0.0

    def test_empty_vs_nonempty_distance_one(self):
        a = np.zeros(3, dtype=bool)
        b = np.ones((1, 3), dtype=bool)
        assert jaccard_distances(a, b)[0] == 1.0

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            jaccard_distances(np.zeros(3, dtype=bool), np.zeros(3, dtype=bool))
        with pytest.raises(ValueError, match="disagree"):
            jaccard_distances(np.zeros(3, dtype=bool), np.zeros((2, 4), dtype=bool))


class TestPredictionDistance:
    def test_absolute_difference(self):
        off = rule_with([True], prediction=5.0)
        pop = [rule_with([True], prediction=p) for p in (1.0, 4.0, 9.0)]
        d = prediction_distances(off, pop)
        assert np.allclose(d, [4.0, 1.0, 4.0])

    def test_nan_maps_to_inf(self):
        off = rule_with([True], prediction=5.0)
        pop = [rule_with([True], prediction=np.nan)]
        assert prediction_distances(off, pop)[0] == np.inf


class TestNearestPhenotype:
    def test_picks_mask_nearest(self):
        off = rule_with([True, True, False, False])
        pop = [
            rule_with([False, False, True, True]),   # disjoint
            rule_with([True, True, True, False]),    # close
        ]
        masks = np.stack([r.match_mask for r in pop])
        assert nearest_phenotype_index(off, pop, masks) == 1

    def test_tie_broken_by_prediction(self):
        off = rule_with([True, False], prediction=10.0)
        pop = [
            rule_with([True, False], prediction=0.0),
            rule_with([True, False], prediction=9.0),
        ]
        masks = np.stack([r.match_mask for r in pop])
        assert nearest_phenotype_index(off, pop, masks) == 1

    def test_full_tie_prefers_lowest_fitness(self):
        off = rule_with([True], prediction=1.0)
        pop = [
            rule_with([True], prediction=1.0, fitness=9.0),
            rule_with([True], prediction=1.0, fitness=2.0),
        ]
        masks = np.stack([r.match_mask for r in pop])
        assert nearest_phenotype_index(off, pop, masks) == 1

    def test_unevaluated_offspring_raises(self):
        off = Rule.from_box(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="evaluated"):
            nearest_phenotype_index(off, [], np.zeros((0, 3), dtype=bool))


class TestReplacementIndex:
    def test_modes(self, rng):
        off = rule_with([True, False], prediction=1.0)
        pop = [
            rule_with([True, False], prediction=1.0, fitness=5.0),
            rule_with([False, True], prediction=99.0, fitness=-2.0),
        ]
        masks = np.stack([r.match_mask for r in pop])
        assert replacement_index(off, pop, masks, "jaccard", rng) == 0
        assert replacement_index(off, pop, masks, "prediction", rng) == 0
        assert replacement_index(off, pop, masks, "worst", rng) == 1
        assert replacement_index(off, pop, masks, "random", rng) in (0, 1)
        with pytest.raises(ValueError):
            replacement_index(off, pop, masks, "nope", rng)


class TestTryReplace:
    def test_replaces_only_if_strictly_fitter(self):
        incumbent = rule_with([True, False], fitness=5.0)
        pop = [incumbent]
        masks = np.stack([incumbent.match_mask])
        equal = rule_with([False, True], fitness=5.0)
        assert not try_replace(pop, masks, equal, 0)
        assert pop[0] is incumbent

        better = rule_with([False, True], fitness=6.0)
        assert try_replace(pop, masks, better, 0)
        assert pop[0] is better
        assert np.array_equal(masks[0], better.match_mask)
