"""Unit tests for the MLP and Elman baselines."""

import numpy as np
import pytest

from repro.baselines.mlp import MLPForecaster, MLPParams
from repro.baselines.recurrent import ElmanForecaster, ElmanParams
from repro.series.noise import sine_series
from repro.series.windowing import WindowDataset


@pytest.fixture
def sine_windows():
    tr = WindowDataset.from_series(sine_series(600, period=30, noise_sigma=0.02, seed=1), 6, 1)
    va = WindowDataset.from_series(sine_series(200, period=30, noise_sigma=0.02, seed=2), 6, 1)
    return tr, va


class TestMLP:
    def test_learns_sine(self, sine_windows):
        tr, va = sine_windows
        model = MLPForecaster(MLPParams(hidden=12, epochs=80, seed=0))
        model.fit(tr.X, tr.y)
        pred = model.predict(va.X)
        err = float(np.sqrt(np.mean((pred - va.y) ** 2)))
        # Naive persistence RMSE on this sine is ~0.2; MLP must beat it.
        assert err < 0.1

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MLPForecaster().predict(np.zeros((2, 6)))

    def test_deterministic_given_seed(self, sine_windows):
        tr, va = sine_windows
        p = MLPParams(hidden=8, epochs=10, seed=42)
        m1 = MLPForecaster(p).fit(tr.X, tr.y)
        m2 = MLPForecaster(p).fit(tr.X, tr.y)
        assert np.allclose(m1.predict(va.X), m2.predict(va.X))

    def test_early_stopping_restores_best(self, sine_windows):
        tr, _ = sine_windows
        model = MLPForecaster(MLPParams(hidden=8, epochs=300, patience=5, seed=0))
        model.fit(tr.X, tr.y)
        # Training must have stopped well before 300 epochs recorded.
        assert len(model.train_curve) < 300

    def test_no_validation_split_path(self, sine_windows):
        tr, _ = sine_windows
        model = MLPForecaster(MLPParams(hidden=4, epochs=5, val_fraction=0.0, seed=0))
        model.fit(tr.X, tr.y)
        assert len(model.train_curve) == 5

    def test_param_validation(self):
        with pytest.raises(ValueError):
            MLPParams(hidden=0)
        with pytest.raises(ValueError):
            MLPParams(val_fraction=1.0)
        with pytest.raises(ValueError):
            MLPParams(learning_rate=0.0)

    def test_output_in_original_units(self):
        """Standardization must be inverted on predict."""
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(200, 4))
        y = 1000.0 + 50.0 * X[:, 0]
        model = MLPForecaster(MLPParams(hidden=8, epochs=60, seed=1))
        model.fit(X, y)
        pred = model.predict(X)
        assert 900 < pred.mean() < 1100


class TestElman:
    def test_learns_sine(self, sine_windows):
        tr, va = sine_windows
        model = ElmanForecaster(ElmanParams(hidden=8, epochs=40, seed=0))
        model.fit(tr.X, tr.y)
        err = float(np.sqrt(np.mean((model.predict(va.X) - va.y) ** 2)))
        assert err < 0.15

    def test_deterministic(self, sine_windows):
        tr, va = sine_windows
        p = ElmanParams(hidden=6, epochs=5, seed=3)
        m1 = ElmanForecaster(p).fit(tr.X, tr.y)
        m2 = ElmanForecaster(p).fit(tr.X, tr.y)
        assert np.allclose(m1.predict(va.X), m2.predict(va.X))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            ElmanForecaster().predict(np.zeros((2, 6)))

    def test_hidden_state_depends_on_order(self, sine_windows):
        """A recurrent net must be sensitive to input order."""
        tr, va = sine_windows
        model = ElmanForecaster(ElmanParams(hidden=8, epochs=20, seed=0))
        model.fit(tr.X, tr.y)
        fwd = model.predict(va.X[:10])
        rev = model.predict(va.X[:10, ::-1])
        assert not np.allclose(fwd, rev)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            ElmanParams(hidden=0)
        with pytest.raises(ValueError):
            ElmanParams(grad_clip=0.0)
