"""Unit tests for repro.core.diagnostics."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    overlap_matrix,
    redundancy_prune,
    summarize_pool,
    zone_errors,
)
from repro.core.predictor import RuleSystem
from repro.core.rule import Rule


def box(lo, hi, prediction=0.5, fitness=1.0, d=2):
    r = Rule.from_box(np.full(d, lo), np.full(d, hi), prediction=prediction)
    r.error = 0.1
    r.fitness = fitness
    return r


@pytest.fixture
def windows(rng):
    return rng.uniform(0, 1, size=(400, 2))


class TestSummarize:
    def test_empty_pool(self, windows):
        s = summarize_pool([], windows)
        assert s.n_rules == 0 and s.coverage == 0.0

    def test_full_cover_rule(self, windows):
        s = summarize_pool([box(0, 1)], windows)
        assert s.coverage == 1.0
        assert s.mean_matches_per_rule == 400
        assert s.mean_rules_per_window == 1.0
        assert s.specialist_fraction == 0.0

    def test_specialists_counted(self, windows):
        tiny = box(0.5, 0.502)  # matches ~0 windows
        s = summarize_pool([box(0, 1), tiny], windows)
        assert s.specialist_fraction == pytest.approx(0.5)

    def test_wildcard_fraction(self, windows):
        from repro.core.intervals import Interval

        r = Rule.from_intervals([Interval(0, 1), Interval.star()], prediction=0.3)
        s = summarize_pool([r], windows)
        assert s.wildcard_fraction == pytest.approx(0.5)

    def test_prediction_span(self, windows):
        s = summarize_pool([box(0, 1, 0.1), box(0, 1, 0.9)], windows)
        assert s.prediction_span == pytest.approx(0.8)


class TestOverlap:
    def test_identical_rules_similarity_one(self, windows):
        a, b = box(0, 0.5), box(0, 0.5)
        M = overlap_matrix([a, b], windows)
        assert M[0, 1] == pytest.approx(1.0)
        assert M[0, 0] == pytest.approx(1.0)

    def test_disjoint_rules_similarity_zero(self, windows):
        M = overlap_matrix([box(0, 0.3), box(0.7, 1.0)], windows)
        assert M[0, 1] == 0.0

    def test_symmetry(self, windows):
        M = overlap_matrix([box(0, 0.6), box(0.4, 1.0), box(0, 1)], windows)
        assert np.allclose(M, M.T)


class TestPrune:
    def test_removes_duplicates_keeps_fittest(self, windows):
        strong = box(0, 0.5, fitness=10.0)
        weak_dup = box(0, 0.5, fitness=1.0)
        other = box(0.6, 1.0, fitness=5.0)
        kept = redundancy_prune([weak_dup, strong, other], windows)
        assert strong in kept and other in kept
        assert weak_dup not in kept

    def test_keeps_distinct_niches(self, windows):
        rules = [box(0, 0.4), box(0.3, 0.7), box(0.6, 1.0)]
        kept = redundancy_prune(rules, windows, max_similarity=0.99)
        assert len(kept) == 3

    def test_coverage_preserved(self, windows):
        from repro.core.matching import coverage_fraction

        rules = [box(0, 0.5), box(0, 0.5), box(0.5, 1.0), box(0.4, 1.0)]
        kept = redundancy_prune(rules, windows, max_similarity=0.9)
        assert coverage_fraction(kept, windows) == pytest.approx(
            coverage_fraction(rules, windows), abs=0.02
        )

    def test_validation(self, windows):
        with pytest.raises(ValueError):
            redundancy_prune([box(0, 1)], windows, max_similarity=0.0)


class TestZoneErrors:
    def test_zones_partition_points(self, rng):
        X = rng.uniform(0, 1, size=(200, 2))
        y = X[:, 0]
        system = RuleSystem([box(0, 1, prediction=0.5)])
        rows = zone_errors(system, X, y, n_zones=4)
        assert len(rows) == 4
        assert sum(r["n_points"] for r in rows) == 200

    def test_uncovered_zone_has_nan_mae(self, rng):
        X = rng.uniform(0, 1, size=(100, 2))
        y = X[:, 0]
        # Rule only matches the lower half of input space.
        system = RuleSystem([box(0, 0.5, prediction=0.25)])
        rows = zone_errors(system, X, y, n_zones=2)
        assert rows[0]["n_predicted"] > 0

    def test_constant_targets(self):
        X = np.random.default_rng(0).uniform(0, 1, size=(50, 2))
        y = np.full(50, 3.0)
        system = RuleSystem([box(0, 1, prediction=3.0)])
        rows = zone_errors(system, X, y, n_zones=3)
        assert sum(r["n_points"] for r in rows) == 50

    def test_validation(self, rng):
        system = RuleSystem([box(0, 1)])
        with pytest.raises(ValueError):
            zone_errors(system, rng.uniform(size=(10, 2)), np.zeros(10), n_zones=0)
