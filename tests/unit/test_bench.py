"""Unit tests for the structured benchmark subsystem (repro.bench)."""

import json

import pytest

from repro.bench import (
    BenchResult,
    compare,
    compare_files,
    emit,
    env_fingerprint,
    load_trajectory,
    record,
    sanitize_name,
    trajectory_path,
)


def _result(**kwargs):
    defaults = dict(
        name="fanout",
        area="parallel",
        scale="bench",
        wall_s={"total": 2.0},
        throughput={"tasks_per_s:shm": 100.0},
        latency={"p99_ms": 5.0},
        speedup={"shm_vs_process": 2.0},
    )
    defaults.update(kwargs)
    return BenchResult(**defaults)


class TestBenchResult:
    def test_round_trip(self):
        r = _result()
        again = BenchResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert again == r

    def test_defaults_filled(self):
        r = _result()
        assert r.code_version
        assert r.env["fingerprint"]
        assert r.key == "fanout@bench"

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            _result(scale="huge")

    def test_fingerprint_stable_within_process(self):
        assert env_fingerprint()["fingerprint"] == \
            env_fingerprint()["fingerprint"]


class TestRecord:
    def test_trajectory_and_run_file(self, tmp_path):
        path = record(_result(), root=tmp_path)
        assert path == trajectory_path("parallel", tmp_path)
        data = load_trajectory(path)
        assert set(data) == {"fanout@bench"}
        run_files = list((tmp_path / "benchmarks" / "results").glob("*.json"))
        assert len(run_files) == 1

    def test_update_preserves_other_scales(self, tmp_path):
        """A tiny-mode CI run must not clobber the bench-scale baseline."""
        record(_result(scale="bench"), root=tmp_path)
        record(_result(scale="tiny", speedup={"shm_vs_process": 1.4}),
               root=tmp_path)
        data = load_trajectory(trajectory_path("parallel", tmp_path))
        assert set(data) == {"fanout@bench", "fanout@tiny"}
        assert data["fanout@bench"].speedup["shm_vs_process"] == 2.0

    def test_malformed_trajectory_rewritten(self, tmp_path):
        path = trajectory_path("parallel", tmp_path)
        path.write_text("{not json")
        record(_result(), root=tmp_path)
        assert set(load_trajectory(path)) == {"fanout@bench"}

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_trajectory(bad)


class TestEmitBugfixes:
    """The historical ``_common.emit`` crash modes, now handled."""

    def test_emit_writes_text(self, tmp_path, capsys):
        path = emit("plain", "hello", root=tmp_path)
        assert path.read_text() == "hello\n"
        assert "===== plain =====" in capsys.readouterr().out

    def test_name_with_path_separator_is_sanitized(self, tmp_path):
        path = emit("table/one", "x", root=tmp_path)
        results = tmp_path / "benchmarks" / "results"
        assert path.parent == results
        assert path.name == "table_one.txt"

    def test_name_cannot_escape_results_dir(self, tmp_path):
        path = emit("../../evil", "x", root=tmp_path)
        assert path.parent == tmp_path / "benchmarks" / "results"
        assert ".." not in path.name

    def test_results_dir_squatted_by_file(self, tmp_path, capsys):
        (tmp_path / "benchmarks").mkdir()
        (tmp_path / "benchmarks" / "results").write_text("squatter")
        assert emit("x", "y", root=tmp_path) is None
        out = capsys.readouterr().out
        assert "skipping persistence" in out
        assert "===== x =====" in out  # the block still prints

    def test_sanitize_name(self):
        assert sanitize_name("a/b\\c") == "a_b_c"
        assert sanitize_name("") == "unnamed"
        assert sanitize_name("ok-name_1@bench") == "ok-name_1@bench"


class TestCompare:
    def test_clean_rerun_passes(self):
        report = compare(_result(), _result(), tolerance=0.25)
        assert report.passed
        assert not report.notes  # same fingerprint: nothing skipped

    def test_speedup_regression_fails(self):
        cur = _result(speedup={"shm_vs_process": 1.3})
        report = compare(_result(), cur, tolerance=0.25)
        assert not report.passed
        d = report.regressions[0]
        assert d.section == "speedup" and d.gated

    def test_throughput_regression_fails_same_env(self):
        cur = _result(throughput={"tasks_per_s:shm": 60.0})
        report = compare(_result(), cur, tolerance=0.25)
        assert not report.passed

    def test_throughput_within_tolerance_passes(self):
        cur = _result(throughput={"tasks_per_s:shm": 80.0})
        assert compare(_result(), cur, tolerance=0.25).passed

    def test_cross_env_throughput_not_gated_but_noted(self):
        base = _result(env={"fingerprint": "aaaa"})
        cur = _result(
            env={"fingerprint": "bbbb"},
            throughput={"tasks_per_s:shm": 10.0},  # 10x worse
        )
        report = compare(base, cur, tolerance=0.25)
        assert report.passed
        assert any("not gated" in n for n in report.notes)

    def test_cross_env_speedup_still_gated(self):
        base = _result(env={"fingerprint": "aaaa"})
        cur = _result(env={"fingerprint": "bbbb"},
                      speedup={"shm_vs_process": 1.0})
        assert not compare(base, cur, tolerance=0.25).passed

    def test_strict_gates_cross_env_throughput(self):
        base = _result(env={"fingerprint": "aaaa"})
        cur = _result(env={"fingerprint": "bbbb"},
                      throughput={"tasks_per_s:shm": 10.0})
        assert not compare(base, cur, tolerance=0.25, strict=True).passed

    def test_wall_never_gated(self):
        cur = _result(wall_s={"total": 200.0})
        assert compare(_result(), cur, tolerance=0.25).passed

    def test_improvement_passes(self):
        cur = _result(speedup={"shm_vs_process": 10.0})
        assert compare(_result(), cur, tolerance=0.25).passed

    def test_latency_growth_fails_same_env(self):
        # Latency is lower-is-better: p99 growing past tolerance gates.
        cur = _result(latency={"p99_ms": 8.0})
        report = compare(_result(), cur, tolerance=0.25)
        assert not report.passed
        d = report.regressions[0]
        assert d.section == "latency" and d.gated

    def test_latency_improvement_and_tolerance_pass(self):
        assert compare(
            _result(), _result(latency={"p99_ms": 1.0}), tolerance=0.25
        ).passed
        assert compare(
            _result(), _result(latency={"p99_ms": 6.0}), tolerance=0.25
        ).passed

    def test_dropped_speedup_key_surfaces_as_skipped_gate(self):
        """A run that stops recording a gated metric must say so.

        The original ``_section_deltas`` intersected the key sets, so a
        refactor that silently dropped a speedup key also silently
        dropped its gate — the report looked identical to a pass.
        """
        cur = _result(speedup={})
        report = compare(_result(), cur, tolerance=0.25)
        assert report.passed  # skips report, they do not fail
        assert len(report.skipped_gates) == 1
        assert "shm_vs_process" in report.skipped_gates[0]
        assert "baseline only" in report.skipped_gates[0]
        text = report.format_text()
        assert "skipped gate:" in text
        assert "1 skipped gate(s)" in text

    def test_new_gated_metric_surfaces_as_skipped_gate(self):
        cur = _result(speedup={"shm_vs_process": 2.0, "brand_new": 3.0})
        report = compare(_result(), cur, tolerance=0.25)
        assert report.passed
        assert any("brand_new" in s and "no baseline" in s
                   for s in report.skipped_gates)

    def test_ungated_sections_do_not_report_skips(self):
        # wall_s is never gated; cross-env throughput is not gated
        # either — neither belongs in the skipped-gates list.
        cur = _result(wall_s={})
        assert not compare(_result(), cur).skipped_gates
        base = _result(env={"fingerprint": "aaaa"})
        cur = _result(env={"fingerprint": "bbbb"}, throughput={})
        assert not compare(base, cur).skipped_gates

    def test_no_skips_on_identical_metric_sets(self):
        report = compare(_result(), _result(), tolerance=0.25)
        assert not report.skipped_gates
        assert "skipped" not in report.format_text()

    def test_cross_env_latency_not_gated_but_noted(self):
        base = _result(env={"fingerprint": "aaaa"}, throughput={},
                       latency={"p99_ms": 5.0})
        cur = _result(env={"fingerprint": "bbbb"}, throughput={},
                      latency={"p99_ms": 50.0})
        report = compare(base, cur, tolerance=0.25)
        assert report.passed
        assert any("not gated" in n for n in report.notes)
        assert not compare(base, cur, tolerance=0.25, strict=True).passed


class TestCompareFiles:
    def test_injected_regression_detected(self, tmp_path):
        base_root = tmp_path / "base"
        cur_root = tmp_path / "cur"
        record(_result(), root=base_root)
        record(_result(speedup={"shm_vs_process": 1.2}), root=cur_root)
        report = compare_files(
            trajectory_path("parallel", base_root),
            trajectory_path("parallel", cur_root),
            tolerance=0.25,
        )
        assert not report.passed
        assert "1 regression" in report.format_text()

    def test_clean_rerun_and_default_current(self, tmp_path, monkeypatch):
        base_root = tmp_path / "base"
        record(_result(), root=base_root)
        record(_result(), root=tmp_path)
        monkeypatch.chdir(tmp_path)
        report = compare_files(
            trajectory_path("parallel", base_root), tolerance=0.25
        )
        assert report.passed

    def test_one_sided_entries_are_notes(self, tmp_path):
        base_root = tmp_path / "base"
        cur_root = tmp_path / "cur"
        record(_result(name="old"), root=base_root)
        record(_result(name="new"), root=cur_root)
        report = compare_files(
            trajectory_path("parallel", base_root),
            trajectory_path("parallel", cur_root),
        )
        assert report.passed
        assert any("baseline" in n for n in report.notes)
