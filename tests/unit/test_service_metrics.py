"""Unit tests for the Prometheus text encoder (repro.service.metrics).

The exposition format has sharp edges a scraper will not forgive:
label escaping, cumulative ``le`` buckets that must be monotone with
``+Inf`` equal to ``_count``, counters that never decrease.  Each is
pinned here, plus a golden-file snapshot of a full registry render so
any formatting drift shows up as a readable diff.
"""

from pathlib import Path

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    escape_label_value,
    format_sample,
    format_value,
    log_buckets,
)

GOLDEN = Path(__file__).parent / "data" / "metrics_golden.txt"


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        # Backslash first: escaping an already-escaped quote stays sane.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_help_escapes(self):
        assert escape_help("multi\nline \\ help") == "multi\\nline \\\\ help"

    def test_format_sample_with_labels(self):
        line = format_sample("m", [("stream", 'g"1'), ("le", "+Inf")], 3)
        assert line == 'm{stream="g\\"1",le="+Inf"} 3'

    def test_format_value_spellings(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestCounter:
    def test_monotone_across_flushes(self):
        c = Counter("reqs", "requests", ["code"])
        seen = []
        for _ in range(5):  # five "scrape flushes"
            c.inc(2, code="200")
            seen.append(c.value(code="200"))
        assert seen == sorted(seen)
        assert seen[-1] == 10

    def test_negative_increment_rejected(self):
        c = Counter("reqs", "requests")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_labels_must_match_declaration(self):
        c = Counter("reqs", "requests", ["code"])
        with pytest.raises(ValueError, match="expects labels"):
            c.inc(status="200")

    def test_render_sorted_by_label(self):
        c = Counter("reqs", "requests", ["code"])
        c.inc(code="500")
        c.inc(code="200")
        body = [ln for ln in c.render() if not ln.startswith("#")]
        assert body == ['reqs{code="200"} 1', 'reqs{code="500"} 1']

    def test_gauge_goes_both_ways(self):
        g = Gauge("depth", "queue depth")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3


class TestHistogram:
    def test_log_buckets_shape(self):
        b = log_buckets(0.001, 1.0, per_decade=3)
        assert b[0] == 0.001 and b[-1] == 1.0
        assert len(b) == 10
        assert all(x < y for x, y in zip(b, b[1:]))

    def test_log_buckets_rejects_bad_range(self):
        for lo, hi in ((0.0, 1.0), (1.0, 1.0), (2.0, 1.0)):
            with pytest.raises(ValueError):
                log_buckets(lo, hi)

    def test_bucket_cumulativity_and_inf(self):
        h = Histogram("lat", "latency", buckets=[0.01, 0.1, 1.0])
        for v in (0.005, 0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        cum = h.cumulative()
        assert cum == [2, 3, 4, 5]
        assert all(a <= b for a, b in zip(cum, cum[1:]))  # le monotone
        assert cum[-1] == h.count() == 5  # +Inf bucket == _count

    def test_render_buckets_are_cumulative_with_inf_last(self):
        h = Histogram("lat", "latency", buckets=[0.01, 0.1])
        for v in (0.005, 0.05, 0.5):
            h.observe(v)
        lines = h.render()
        buckets = [ln for ln in lines if "_bucket" in ln]
        assert buckets == [
            'lat_bucket{le="0.01"} 1',
            'lat_bucket{le="0.1"} 2',
            'lat_bucket{le="+Inf"} 3',
        ]
        assert "lat_sum 0.555" in lines
        assert "lat_count 3" in lines

    def test_observation_on_bound_lands_in_its_bucket(self):
        # le is inclusive: an observation exactly on a bound counts there.
        h = Histogram("lat", "latency", buckets=[0.01, 0.1])
        h.observe(0.01)
        assert h.cumulative() == [1, 1, 1]

    def test_percentile_interpolation(self):
        h = Histogram("lat", "latency", buckets=[1.0, 2.0, 4.0])
        for v in [0.5] * 50 + [1.5] * 50:
            h.observe(v)
        assert h.percentile(0.5) == pytest.approx(1.0)
        assert h.percentile(0.75) == pytest.approx(1.5)
        assert h.percentile(1.0) == pytest.approx(2.0)

    def test_percentile_overflow_clamps_to_top_bound(self):
        h = Histogram("lat", "latency", buckets=[1.0])
        h.observe(100.0)
        assert h.percentile(0.99) == 1.0

    def test_percentile_empty_is_nan(self):
        import math

        h = Histogram("lat", "latency")
        assert math.isnan(h.percentile(0.99))
        with pytest.raises(ValueError):
            h.percentile(0.0)

    def test_rejects_non_increasing_buckets(self):
        for bad in ([], [1.0, 1.0], [2.0, 1.0], [1.0, float("inf")]):
            with pytest.raises(ValueError):
                Histogram("lat", "latency", buckets=bad)


class TestHistogramTopK:
    def _capped(self, top_k=2):
        h = Histogram(
            "lat", "latency", ["stream"], buckets=[0.01, 0.1], top_k=top_k
        )
        for _ in range(5):
            h.observe(0.005, stream="busy")
        for _ in range(3):
            h.observe(0.05, stream="mid")
        h.observe(0.5, stream="cold-a")
        h.observe(0.005, stream="cold-b")
        return h

    def test_top_k_keeps_busiest_and_merges_rest(self):
        lines = self._capped().render()
        labelled = {
            ln.split("{")[1].split('"')[1]
            for ln in lines
            if "_bucket" in ln
        }
        assert labelled == {"busy", "mid", "other"}
        # The merge is exact: other = cold-a + cold-b on every axis.
        assert 'lat_count{stream="other"} 2' in lines
        assert 'lat_bucket{stream="other",le="0.01"} 1' in lines
        assert 'lat_bucket{stream="other",le="+Inf"} 2' in lines

    def test_cap_is_a_view_not_a_loss(self):
        h = self._capped()
        h.render()
        # Cold streams' state survives the capped render; enough new
        # traffic promotes one into the top-K with full history.
        for _ in range(10):
            h.observe(0.005, stream="cold-a")
        lines = h.render()
        assert 'lat_count{stream="cold-a"} 11' in lines

    def test_under_cap_renders_all_series(self):
        lines = self._capped(top_k=10).render()
        assert not any('stream="other"' in ln for ln in lines)
        assert 'lat_count{stream="cold-a"} 1' in lines

    def test_real_other_stream_merges_into_aggregate(self):
        h = self._capped()
        h.observe(0.5, stream="other")
        lines = h.render()
        assert 'lat_count{stream="other"} 3' in lines

    def test_top_k_must_be_positive(self):
        with pytest.raises(ValueError, match="top_k"):
            Histogram("lat", "latency", ["stream"], top_k=0)

    def test_gauge_clear_drops_series(self):
        g = Gauge("cov", "coverage", ["stream"])
        g.set(0.5, stream="a")
        g.clear()
        assert [ln for ln in g.render() if not ln.startswith("#")] == []


class TestRenderMetricsCap:
    def test_gateway_gauges_capped_with_other_aggregate(self):
        """/metrics exposes top-K streams by traffic + one aggregate."""
        import numpy as np

        from repro.core.rule import Rule
        from repro.core.predictor import RuleSystem
        from repro.service import ForecastService, ForecastServer, ServerConfig

        d = 4
        pool = RuleSystem([
            Rule.from_box(np.full(d, -10.0), np.full(d, 10.0), prediction=1.0)
        ])
        service = ForecastService()
        for name in ("busy", "mid", "cold-a", "cold-b"):
            service.bind_system(name, pool, "m")
        # Traffic: busy 3*d, mid 2*d, colds d each (all windows ready).
        for reps, name in ((3, "busy"), (2, "mid"),
                           (1, "cold-a"), (1, "cold-b")):
            for _ in range(reps):
                service.ingest([(name, 0.5)] * d)
        server = ForecastServer(service, ServerConfig(metrics_top_k=2))
        out = server.render_metrics()
        cov = [ln for ln in out.splitlines()
               if ln.startswith("repro_gateway_stream_coverage{")]
        assert cov == [
            'repro_gateway_stream_coverage{stream="busy"} 1',
            'repro_gateway_stream_coverage{stream="mid"} 1',
            'repro_gateway_stream_coverage{stream="other"} 1',
        ]
        # The aggregate sums the tail's predicted steps (1 ready step
        # per cold stream with the always-matching rule).
        assert ('repro_gateway_stream_predicted_steps{stream="other"} 2'
                in out)

    def test_render_is_stable_when_a_stream_leaves_top_k(self):
        """A stream overtaken in traffic moves into the aggregate."""
        import numpy as np

        from repro.core.rule import Rule
        from repro.core.predictor import RuleSystem
        from repro.service import ForecastService, ForecastServer, ServerConfig

        d = 2
        pool = RuleSystem([
            Rule.from_box(np.full(d, -10.0), np.full(d, 10.0), prediction=1.0)
        ])
        service = ForecastService()
        for name in ("a", "b", "c"):
            service.bind_system(name, pool, "m")
        server = ForecastServer(service, ServerConfig(metrics_top_k=1))
        service.ingest([("a", 0.5)] * 3 + [("b", 0.5)] * 2 + [("c", 0.5)])
        first = server.render_metrics()
        assert 'repro_gateway_stream_coverage{stream="a"}' in first
        service.ingest([("b", 0.5)] * 4)
        second = server.render_metrics()
        # "a" must not linger as a stale series after losing the slot.
        assert 'repro_gateway_stream_coverage{stream="a"}' not in second
        assert 'repro_gateway_stream_coverage{stream="b"}' in second


class TestAdaptationMetrics:
    """render_metrics() surfaces eviction + adaptation observability."""

    def _server(self):
        import numpy as np

        from repro.core.rule import Rule
        from repro.core.predictor import RuleSystem
        from repro.service import ForecastService, ForecastServer

        d = 2
        pool = RuleSystem([
            Rule.from_box(np.full(d, -10.0), np.full(d, 10.0), prediction=1.0)
        ])
        service = ForecastService()
        service.bind_system("tide", pool, "m")
        return service, ForecastServer(service)

    def test_evicted_streams_gauge_always_present(self):
        _, server = self._server()
        assert "repro_gateway_evicted_streams_total 0" in server.render_metrics()

    def test_no_adaptation_series_when_detached(self):
        _, server = self._server()
        assert "repro_adaptation_" not in server.render_metrics()

    def test_adaptation_counters_and_shadow_gauges(self):
        class _Hook:
            def on_batch(self, batch, results, ready, stacks):
                pass

            def stats(self):
                return {
                    "drift_events": 3,
                    "retrains": 2,
                    "promotions": 1,
                    "rollbacks": 0,
                    "shadow": {
                        "m": {
                            "champion_error": 0.5,
                            "challenger_error": 0.25,
                        }
                    },
                }

        service, server = self._server()
        service.attach_adaptation(_Hook())
        out = server.render_metrics()
        assert "repro_adaptation_drift_events_total 3" in out
        assert "repro_adaptation_retrains_total 2" in out
        assert "repro_adaptation_promotions_total 1" in out
        assert "repro_adaptation_rollbacks_total 0" in out
        assert ('repro_adaptation_shadow_error'
                '{model="m",role="champion"} 0.5') in out
        assert ('repro_adaptation_shadow_error'
                '{model="m",role="challenger"} 0.25') in out

    def test_resolved_challenge_drops_its_series(self):
        class _Hook:
            def __init__(self):
                self.shadow = {"m": {"champion_error": 1.0,
                                     "challenger_error": 2.0}}

            def on_batch(self, batch, results, ready, stacks):
                pass

            def stats(self):
                return {"drift_events": 0, "retrains": 0, "promotions": 0,
                        "rollbacks": 0, "shadow": self.shadow}

        service, server = self._server()
        hook = _Hook()
        service.attach_adaptation(hook)
        assert 'model="m"' in server.render_metrics()
        hook.shadow = {}
        assert 'model="m"' not in server.render_metrics()


class TestRegistry:
    def test_idempotent_creation(self):
        r = MetricsRegistry()
        a = r.counter("x", "help")
        assert r.counter("x", "help") is a

    def test_type_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x", "help")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x", "help")

    def test_render_ends_with_newline(self):
        r = MetricsRegistry()
        r.gauge("g", "a gauge").set(1.5)
        out = r.render()
        assert out.endswith("\n") and not out.endswith("\n\n")

    def test_golden_exposition_snapshot(self):
        """A full registry render, pinned byte for byte.

        Regenerate after an intentional format change with::

            PYTHONPATH=src python tests/unit/test_service_metrics.py
        """
        assert _golden_registry().render() == GOLDEN.read_text()


def _golden_registry() -> MetricsRegistry:
    """A deterministic registry exercising every encoder feature."""
    r = MetricsRegistry()
    events = r.counter("repro_events_total", "Events ingested.", ["stream"])
    events.inc(3, stream="gauge-venice")
    events.inc(stream='weird"stream\\name')
    errors = r.counter(
        "repro_errors_total", "Rejected events,\nby reason.", ["reason"]
    )
    errors.inc(2, reason="malformed")
    depth = r.gauge("repro_queue_depth", "Events queued, not yet scored.")
    depth.set(7)
    lat = r.histogram(
        "repro_ingest_latency_seconds",
        "Enqueue-to-forecast latency.",
        buckets=[0.001, 0.01, 0.1, 1.0],
    )
    for v in (0.0005, 0.004, 0.004, 0.02, 0.3, 2.5):
        lat.observe(v)
    per_stream = r.histogram(
        "repro_stream_ingest_latency_seconds",
        "Per-stream latency (top-2 by traffic + other).",
        ["stream"],
        buckets=[0.01, 0.1],
        top_k=2,
    )
    per_stream.observe(0.004, stream="gauge-venice")
    per_stream.observe(0.04, stream="gauge-venice")
    per_stream.observe(0.004, stream="gauge-chioggia")
    per_stream.observe(0.04, stream="gauge-chioggia")
    per_stream.observe(0.2, stream="gauge-burano")
    per_stream.observe(0.004, stream="gauge-murano")
    evicted = r.gauge(
        "repro_gateway_evicted_streams_total",
        "Streams evicted by the store's TTL/LRU policy.",
    )
    evicted.set(2)
    drift = r.gauge(
        "repro_adaptation_drift_events_total",
        "Drift events the monitor has fired.",
    )
    drift.set(4)
    shadow = r.gauge(
        "repro_adaptation_shadow_error",
        "Mean absolute shadow-comparison error per model, by role.",
        ["model", "role"],
    )
    shadow.set(0.8125, model="tide-lr", role="champion")
    shadow.set(0.5, model="tide-lr", role="challenger")
    policy_eval = r.gauge(
        "repro_policy_evaluated_total",
        "Forecasts the policy engine evaluated.",
    )
    policy_eval.set(24)
    policy_alerts = r.gauge(
        "repro_policy_alerts_total", "Alert decisions emitted."
    )
    policy_alerts.set(3)
    reasons = r.gauge(
        "repro_policy_reasons_total",
        "Decision reason codes emitted, by code.",
        ["reason"],
    )
    reasons.set(3, reason="threshold-above")
    reasons.set(5, reason="not-ready")
    reasons.set(1, reason="rate-limited")
    return r


if __name__ == "__main__":  # regenerate the golden file
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(_golden_registry().render())
    print(f"wrote {GOLDEN}")
