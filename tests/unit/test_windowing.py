"""Unit tests for repro.series.windowing."""

import numpy as np
import pytest

from repro.series.windowing import (
    MinMaxScaler,
    WindowDataset,
    make_windows,
    train_test_split_series,
)


class TestMakeWindows:
    def test_window_target_alignment(self):
        series = np.arange(20, dtype=float)
        X, y = make_windows(series, d=4, horizon=3)
        # X_i = series[i : i+4]; y_i = series[i+4-1+3] = series[i+6]
        assert np.array_equal(X[0], [0, 1, 2, 3])
        assert y[0] == 6.0
        assert np.array_equal(X[-1], [13, 14, 15, 16])
        assert y[-1] == 19.0
        assert X.shape[0] == 20 - 4 - 3 + 1

    def test_horizon_one(self):
        X, y = make_windows(np.arange(10, dtype=float), d=3, horizon=1)
        assert y[0] == 3.0  # next value after the window

    def test_windows_are_views(self):
        series = np.arange(50, dtype=float)
        X, _ = make_windows(series, 5, 1)
        assert X.base is not None  # strided view, no copy
        assert not X.flags.writeable

    def test_too_short_raises(self):
        with pytest.raises(ValueError, match="too short"):
            make_windows(np.arange(5, dtype=float), d=4, horizon=3)

    def test_bad_params(self):
        s = np.arange(10, dtype=float)
        with pytest.raises(ValueError):
            make_windows(s, d=0, horizon=1)
        with pytest.raises(ValueError):
            make_windows(s, d=3, horizon=0)
        with pytest.raises(ValueError, match="1-D"):
            make_windows(np.zeros((3, 3)), d=1, horizon=1)

    def test_exact_minimum_length(self):
        # len = D + horizon → exactly one window.
        X, y = make_windows(np.arange(7, dtype=float), d=4, horizon=3)
        assert X.shape == (1, 4) and y.shape == (1,)


class TestWindowDataset:
    def test_ranges(self):
        series = np.array([3.0, -1.0, 5.0, 2.0, 4.0, 0.0])
        ds = WindowDataset.from_series(series, 2, 1)
        assert ds.input_range == (-1.0, 5.0)
        lo, hi = ds.output_range
        assert lo == min(ds.y) and hi == max(ds.y)

    def test_len_and_subset(self):
        ds = WindowDataset.from_series(np.arange(10, dtype=float), 3, 1)
        assert len(ds) == 7
        mask = np.zeros(7, dtype=bool)
        mask[2] = True
        X, y = ds.subset(mask)
        assert X.shape == (1, 3) and y.shape == (1,)


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self, rng):
        vals = rng.normal(size=200)
        s = MinMaxScaler().fit(vals)
        t = s.transform(vals)
        assert t.min() == pytest.approx(0.0)
        assert t.max() == pytest.approx(1.0)

    def test_inverse_roundtrip(self, rng):
        vals = rng.normal(size=50) * 7 + 3
        s = MinMaxScaler((0, 1)).fit(vals)
        assert np.allclose(s.inverse_transform(s.transform(vals)), vals)

    def test_custom_range(self):
        s = MinMaxScaler((-1, 1)).fit(np.array([0.0, 10.0]))
        assert s.transform(np.array([5.0]))[0] == pytest.approx(0.0)

    def test_no_leakage_beyond_fit_range(self):
        s = MinMaxScaler().fit(np.array([0.0, 10.0]))
        assert s.transform(np.array([20.0]))[0] == pytest.approx(2.0)

    def test_constant_data(self):
        s = MinMaxScaler().fit(np.array([4.0, 4.0]))
        assert np.all(s.transform(np.array([4.0, 4.0])) == 0.0)

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="before fit"):
            MinMaxScaler().transform(np.zeros(3))

    def test_bad_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler((1, 1))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.array([]))


class TestSplit:
    def test_chronological(self):
        series = np.arange(10, dtype=float)
        a, b = train_test_split_series(series, 7)
        assert np.array_equal(a, np.arange(7))
        assert np.array_equal(b, np.arange(7, 10))

    def test_bad_n_train(self):
        with pytest.raises(ValueError):
            train_test_split_series(np.arange(5, dtype=float), 0)
        with pytest.raises(ValueError):
            train_test_split_series(np.arange(5, dtype=float), 5)
