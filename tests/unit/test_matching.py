"""Unit tests for repro.core.matching."""

import numpy as np
import pytest

from repro.core.intervals import Interval
from repro.core.matching import (
    coverage_fraction,
    coverage_mask,
    match_counts,
    match_mask,
    match_mask_dense,
    population_match_matrix,
)
from repro.core.rule import Rule


@pytest.fixture
def windows(rng):
    return rng.uniform(0, 1, size=(800, 5))


def box_rule(lo, hi, d=5):
    return Rule.from_box(np.full(d, lo), np.full(d, hi))


class TestMatchMask:
    def test_matches_scalar_predicate(self, windows):
        rule = box_rule(0.2, 0.8)
        mask = match_mask(rule, windows)
        for i in range(0, 800, 97):
            assert mask[i] == rule.matches(windows[i])

    def test_lazy_equals_dense(self, windows):
        rule = box_rule(0.3, 0.6)
        assert np.array_equal(
            match_mask(rule, windows), match_mask_dense(rule, windows)
        )

    def test_all_wildcards_match_everything(self, windows):
        rule = Rule.from_intervals([Interval.star()] * 5)
        assert match_mask(rule, windows).all()

    def test_empty_box_matches_nothing(self, windows):
        rule = box_rule(2.0, 3.0)
        assert not match_mask(rule, windows).any()

    def test_wrong_arity_raises(self, windows):
        with pytest.raises(ValueError, match="incompatible"):
            match_mask(box_rule(0, 1, d=4), windows)

    def test_partial_wildcards(self, windows):
        ivs = [Interval.star()] * 5
        ivs[2] = Interval(0.0, 0.5)
        rule = Rule.from_intervals(ivs)
        mask = match_mask(rule, windows)
        assert np.array_equal(mask, windows[:, 2] <= 0.5)

    def test_small_input_uses_dense_path(self):
        rule = box_rule(0.0, 1.0)
        tiny = np.full((3, 5), 0.5)
        assert match_mask(rule, tiny).all()


class TestAggregates:
    def test_match_counts(self, windows):
        rules = [box_rule(0, 1), box_rule(2, 3)]
        counts = match_counts(rules, windows)
        assert counts[0] == 800 and counts[1] == 0

    def test_population_match_matrix_uses_bound_cache(self, windows):
        rule = box_rule(0, 1)
        # Poisoned cache *bound to this window matrix* is trusted verbatim.
        rule.bind_mask(np.zeros(800, dtype=bool), windows)
        mat = population_match_matrix([rule], windows)
        assert not mat.any()

    def test_population_match_matrix_ignores_stale_cache(self, windows):
        rule = box_rule(0, 1)
        rule.match_mask = np.zeros(10, dtype=bool)  # no provenance at all
        mat = population_match_matrix([rule], windows)
        assert mat.all()

    def test_population_match_matrix_ignores_equal_sized_foreign_cache(
        self, windows, rng
    ):
        """Same row count as training must not alias stale masks.

        Regression: the cache used to be keyed on mask *length* alone,
        so a validation set with exactly as many rows as training
        silently reused training masks.
        """
        rule = box_rule(0.0, 0.5)
        train = rng.uniform(0, 0.4, size=windows.shape)  # all match
        rule.bind_mask(match_mask(rule, train), train)
        assert rule.match_mask.all()
        val = np.full(windows.shape, 0.9)  # same shape, nothing matches
        mat = population_match_matrix([rule], val)
        assert not mat.any()

    def test_coverage_mask_ignores_equal_sized_foreign_cache(self, windows, rng):
        rule = box_rule(0.0, 0.5)
        train = rng.uniform(0, 0.4, size=windows.shape)
        rule.bind_mask(match_mask(rule, train), train)
        val = np.full(windows.shape, 0.9)
        assert not coverage_mask([rule], val).any()
        # ... while the bound matrix itself still reuses the cache.
        poisoned = np.zeros(train.shape[0], dtype=bool)
        rule.bind_mask(poisoned, train)
        assert not coverage_mask([rule], train).any()

    def test_coverage_mask_union(self, windows):
        low = Rule.from_box(np.zeros(5), np.full(5, 0.5))
        high = Rule.from_box(np.full(5, 0.5), np.ones(5))
        union = coverage_mask([low, high], windows)
        each = match_mask(low, windows) | match_mask(high, windows)
        assert np.array_equal(union, each)

    def test_coverage_fraction_bounds(self, windows):
        assert coverage_fraction([], windows) == 0.0
        assert coverage_fraction([box_rule(0, 1)], windows) == 1.0

    def test_coverage_fraction_empty_windows(self):
        assert coverage_fraction([box_rule(0, 1)], np.empty((0, 5))) == 0.0
