"""Unit tests for repro.core.matching."""

import numpy as np
import pytest

from repro.core.intervals import Interval
from repro.core.matching import (
    coverage_fraction,
    coverage_mask,
    match_counts,
    match_mask,
    match_mask_dense,
    population_match_matrix,
)
from repro.core.rule import Rule


@pytest.fixture
def windows(rng):
    return rng.uniform(0, 1, size=(800, 5))


def box_rule(lo, hi, d=5):
    return Rule.from_box(np.full(d, lo), np.full(d, hi))


class TestMatchMask:
    def test_matches_scalar_predicate(self, windows):
        rule = box_rule(0.2, 0.8)
        mask = match_mask(rule, windows)
        for i in range(0, 800, 97):
            assert mask[i] == rule.matches(windows[i])

    def test_lazy_equals_dense(self, windows):
        rule = box_rule(0.3, 0.6)
        assert np.array_equal(
            match_mask(rule, windows), match_mask_dense(rule, windows)
        )

    def test_all_wildcards_match_everything(self, windows):
        rule = Rule.from_intervals([Interval.star()] * 5)
        assert match_mask(rule, windows).all()

    def test_empty_box_matches_nothing(self, windows):
        rule = box_rule(2.0, 3.0)
        assert not match_mask(rule, windows).any()

    def test_wrong_arity_raises(self, windows):
        with pytest.raises(ValueError, match="incompatible"):
            match_mask(box_rule(0, 1, d=4), windows)

    def test_partial_wildcards(self, windows):
        ivs = [Interval.star()] * 5
        ivs[2] = Interval(0.0, 0.5)
        rule = Rule.from_intervals(ivs)
        mask = match_mask(rule, windows)
        assert np.array_equal(mask, windows[:, 2] <= 0.5)

    def test_small_input_uses_dense_path(self):
        rule = box_rule(0.0, 1.0)
        tiny = np.full((3, 5), 0.5)
        assert match_mask(rule, tiny).all()


class TestAggregates:
    def test_match_counts(self, windows):
        rules = [box_rule(0, 1), box_rule(2, 3)]
        counts = match_counts(rules, windows)
        assert counts[0] == 800 and counts[1] == 0

    def test_population_match_matrix_uses_cache(self, windows):
        rule = box_rule(0, 1)
        rule.match_mask = np.zeros(800, dtype=bool)  # poisoned cache
        mat = population_match_matrix([rule], windows)
        # cache had the right length so it is reused verbatim
        assert not mat.any()

    def test_population_match_matrix_ignores_stale_cache(self, windows):
        rule = box_rule(0, 1)
        rule.match_mask = np.zeros(10, dtype=bool)  # wrong length
        mat = population_match_matrix([rule], windows)
        assert mat.all()

    def test_coverage_mask_union(self, windows):
        low = Rule.from_box(np.zeros(5), np.full(5, 0.5))
        high = Rule.from_box(np.full(5, 0.5), np.ones(5))
        union = coverage_mask([low, high], windows)
        each = match_mask(low, windows) | match_mask(high, windows)
        assert np.array_equal(union, each)

    def test_coverage_fraction_bounds(self, windows):
        assert coverage_fraction([], windows) == 0.0
        assert coverage_fraction([box_rule(0, 1)], windows) == 1.0

    def test_coverage_fraction_empty_windows(self):
        assert coverage_fraction([box_rule(0, 1)], np.empty((0, 5))) == 0.0
