"""Unit tests for repro.core.predictor (RuleSystem, §3.4)."""

import numpy as np
import pytest

from repro.core.predictor import RuleSystem
from repro.core.rule import Rule


def const_rule(lo, hi, prediction, d=3, error=0.1, n_matched=5):
    r = Rule.from_box(np.full(d, lo), np.full(d, hi), prediction=prediction)
    r.error = error
    r.n_matched = n_matched
    return r


class TestConstruction:
    def test_rejects_unevaluated_rules(self):
        raw = Rule.from_box(np.zeros(3), np.ones(3))  # prediction NaN
        with pytest.raises(ValueError, match="evaluated"):
            RuleSystem([raw])

    def test_accepts_linear_rules_with_nan_prediction(self):
        r = Rule.from_box(np.zeros(3), np.ones(3))
        r.coeffs = np.array([1.0, 0.0, 0.0, 0.0])
        RuleSystem([r])  # must not raise

    def test_len_and_arity(self):
        sys = RuleSystem([const_rule(0, 1, 0.5)])
        assert len(sys) == 1
        assert sys.n_lags == 3

    def test_empty_system(self):
        sys = RuleSystem([])
        batch = sys.predict(np.zeros((4, 3)))
        assert not batch.predicted.any()
        assert np.isnan(batch.values).all()
        with pytest.raises(ValueError):
            _ = sys.n_lags


class TestPrediction:
    def test_mean_of_matching_rules(self):
        sys = RuleSystem([
            const_rule(0, 1, 2.0),
            const_rule(0, 1, 4.0),
            const_rule(5, 6, 100.0),  # does not match
        ])
        batch = sys.predict(np.full((1, 3), 0.5))
        assert batch.values[0] == pytest.approx(3.0)
        assert batch.n_rules_used[0] == 2

    def test_abstention_when_nothing_matches(self):
        sys = RuleSystem([const_rule(0, 1, 2.0)])
        batch = sys.predict(np.full((2, 3), 9.0))
        assert np.isnan(batch.values).all()
        assert batch.coverage == 0.0

    def test_linear_rule_applies_hyperplane(self):
        r = const_rule(0, 1, 0.0)
        r.coeffs = np.array([1.0, 1.0, 1.0, 0.5])
        sys = RuleSystem([r])
        batch = sys.predict(np.array([[0.1, 0.2, 0.3]]))
        assert batch.values[0] == pytest.approx(0.6 + 0.5)

    def test_predict_one(self):
        sys = RuleSystem([const_rule(0, 1, 7.0)])
        assert sys.predict_one(np.full(3, 0.5)) == pytest.approx(7.0)
        assert sys.predict_one(np.full(3, 9.0)) is None

    def test_arity_mismatch(self):
        sys = RuleSystem([const_rule(0, 1, 1.0)])
        with pytest.raises(ValueError, match="lags"):
            sys.predict(np.zeros((2, 4)))

    def test_coverage_fraction(self):
        sys = RuleSystem([const_rule(0, 1, 1.0)])
        X = np.vstack([np.full((3, 3), 0.5), np.full((1, 3), 9.0)])
        assert sys.coverage(X) == pytest.approx(0.75)


class TestCompiledRouting:
    def test_default_path_is_compiled_and_cached(self):
        sys = RuleSystem([const_rule(0, 1, 2.0)])
        sys.predict(np.full((2, 3), 0.5))
        assert sys._compiled is not None
        assert sys.compile() is sys._compiled

    def test_compiled_flag_is_bitwise_identical(self):
        rng = np.random.default_rng(0)
        rules = []
        for _ in range(12):
            lo = rng.uniform(0, 0.6, size=3)
            r = Rule.from_box(lo, lo + 0.3, prediction=float(rng.normal()))
            r.error = 0.1
            if rng.random() < 0.5:
                r.coeffs = np.concatenate([rng.normal(size=3), [0.2]])
            rules.append(r)
        sys = RuleSystem(rules)
        X = rng.uniform(0, 1, size=(64, 3))
        a = sys.predict(X, compiled=False)
        b = sys.predict(X, compiled=True)
        assert np.array_equal(a.values, b.values, equal_nan=True)
        assert np.array_equal(a.predicted, b.predicted)
        assert np.array_equal(a.n_rules_used, b.n_rules_used)

    def test_predict_one_compiled_matches_loop(self):
        sys = RuleSystem([const_rule(0, 1, 7.0)])
        x = np.full(3, 0.5)
        assert sys.predict_one(x) == sys.predict_one(x, compiled=False)
        far = np.full(3, 9.0)
        assert sys.predict_one(far) is None
        assert sys.predict_one(far, compiled=False) is None

    def test_compile_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            RuleSystem([]).compile()

    def test_cache_invalidated_by_same_length_rule_swap(self):
        """Swapping a rule in place (same pool size) must recompile."""
        sys = RuleSystem([const_rule(0, 1, 1.0)])
        x = np.full((1, 3), 0.5)
        assert sys.predict(x).values[0] == pytest.approx(1.0)
        sys.rules[0] = const_rule(0, 1, 100.0)
        assert sys.predict(x).values[0] == pytest.approx(100.0)

    def test_compiled_rejects_non_finite_patterns(self):
        sys = RuleSystem([const_rule(0, 1, 1.0)])
        bad = np.array([[0.5, np.nan, 0.5], [0.5, 0.5, 0.5]])
        with pytest.raises(ValueError, match="finite"):
            sys.predict(bad, compiled=True)
        single = np.array([[np.inf, 0.5, 0.5]])
        with pytest.raises(ValueError, match="finite"):
            sys.predict(single, compiled=True)


class TestComposition:
    def test_merged_with(self):
        a = RuleSystem([const_rule(0, 1, 1.0)])
        b = RuleSystem([const_rule(1, 2, 2.0)])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert len(a) == 1 and len(b) == 1  # originals untouched

    def test_filtered_by_error(self):
        sys = RuleSystem([
            const_rule(0, 1, 1.0, error=0.05),
            const_rule(0, 1, 2.0, error=0.50),
        ])
        assert len(sys.filtered(max_error=0.1)) == 1

    def test_filtered_by_matches(self):
        sys = RuleSystem([
            const_rule(0, 1, 1.0, n_matched=2),
            const_rule(0, 1, 2.0, n_matched=20),
        ])
        assert len(sys.filtered(min_matches=10)) == 1

    def test_filtered_drops_inf_error(self):
        sys = RuleSystem([const_rule(0, 1, 1.0, error=np.inf)])
        assert len(sys.filtered(max_error=1e9)) == 0

    def test_describe(self):
        sys = RuleSystem([const_rule(0, 1, 1.0)])
        text = sys.describe()
        assert "1 rules" in text
        assert "IF" in text
