"""Unit tests for the ARMA baseline (Hannan-Rissanen)."""

import numpy as np
import pytest

from repro.baselines.arma import ARMAForecaster, ARMAParams
from repro.series.noise import ar_process, sine_series


class TestParams:
    def test_valid(self):
        ARMAParams(p=2, q=1)
        ARMAParams(p=0, q=1)
        ARMAParams(p=1, q=0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ARMAParams(p=-1, q=1)
        with pytest.raises(ValueError):
            ARMAParams(p=0, q=0)
        with pytest.raises(ValueError):
            ARMAParams(p=1, q=1, long_ar_order=0)


class TestFit:
    def test_recovers_ar_coefficients(self):
        series = ar_process(4000, [0.7, -0.2], sigma=1.0, seed=1)
        model = ARMAForecaster(ARMAParams(p=2, q=0)).fit(series)
        assert model.ar_coeffs[0] == pytest.approx(0.7, abs=0.06)
        assert model.ar_coeffs[1] == pytest.approx(-0.2, abs=0.06)

    def test_residuals_near_innovation_scale(self):
        series = ar_process(3000, [0.6], sigma=2.0, seed=3)
        model = ARMAForecaster(ARMAParams(p=1, q=1)).fit(series[:2500])
        pred = model.predict_series(series[2400:], horizon=1)
        ok = np.isfinite(pred)
        resid = series[2400:][ok] - pred[ok]
        assert 1.6 < resid.std() < 2.4  # ≈ sigma

    def test_too_short_raises(self):
        with pytest.raises(ValueError, match="too short"):
            ARMAForecaster(ARMAParams(p=4, q=2)).fit(np.zeros(10))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            ARMAForecaster().fit(np.zeros((10, 10)))

    def test_mean_handling(self):
        series = ar_process(2000, [0.5], sigma=0.5, seed=5) + 100.0
        model = ARMAForecaster(ARMAParams(p=1, q=0)).fit(series)
        fc = model.forecast(10)
        assert 95 < fc.mean() < 105  # forecasts near the series mean


class TestForecast:
    def test_forecast_length_and_decay(self):
        series = ar_process(2000, [0.8], sigma=1.0, seed=7)
        model = ARMAForecaster(ARMAParams(p=1, q=0)).fit(series)
        fc = model.forecast(50)
        assert fc.shape == (50,)
        # AR(1) iterated forecast decays geometrically to the mean.
        dev = np.abs(fc - model.mean)
        assert dev[-1] < dev[0] + 1e-9

    def test_forecast_validation(self):
        model = ARMAForecaster(ARMAParams(p=1, q=0))
        with pytest.raises(RuntimeError):
            model.forecast(5)
        model.fit(ar_process(500, [0.5], seed=1))
        with pytest.raises(ValueError):
            model.forecast(0)


class TestPredictSeries:
    def test_alignment(self):
        series = ar_process(1500, [0.6], sigma=0.8, seed=9)
        model = ARMAForecaster(ARMAParams(p=1, q=0)).fit(series[:1000])
        pred = model.predict_series(series[1000:], horizon=1)
        assert pred.shape == (500,)
        assert np.isnan(pred[0])  # no history yet
        assert np.isfinite(pred[-1])

    def test_larger_horizon_is_harder(self):
        series = ar_process(3000, [0.85], sigma=1.0, seed=11)
        model = ARMAForecaster(ARMAParams(p=1, q=0)).fit(series[:2000])
        tail = series[2000:]
        errs = []
        for h in (1, 5):
            pred = model.predict_series(tail, horizon=h)
            ok = np.isfinite(pred)
            errs.append(float(np.sqrt(np.mean((tail[ok] - pred[ok]) ** 2))))
        assert errs[1] > errs[0]

    def test_horizon_validation(self):
        model = ARMAForecaster(ARMAParams(p=1, q=0)).fit(
            ar_process(500, [0.5], seed=1)
        )
        with pytest.raises(ValueError):
            model.predict_series(np.zeros(50), horizon=0)

    def test_pure_ma_model_runs(self):
        series = sine_series(800, period=20, noise_sigma=0.5, seed=13)
        model = ARMAForecaster(ARMAParams(p=0, q=2)).fit(series)
        pred = model.predict_series(series[-100:], horizon=1)
        assert np.isfinite(pred[-1])
