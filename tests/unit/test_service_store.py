"""Unit tests for the pluggable stream store (repro.service.store).

The store owns eviction *policy* (idle TTL, max-streams LRU); the
gateway owns eviction *semantics* (an evicted stream is unbound and
must re-bind).  Both halves are pinned here: the policy with an
injected fake clock so nothing sleeps, the semantics end-to-end
through ``ForecastService.ingest``.
"""

import numpy as np
import pytest

from repro.core.predictor import RuleSystem
from repro.core.rule import Rule
from repro.service import ForecastService, InMemoryStreamStore, StreamState


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, s: float) -> None:
        self.now += s


def _state(d: int = 3) -> StreamState:
    return StreamState(d, ("m", 1))


class TestInMemoryStore:
    def test_add_get_remove_roundtrip(self):
        store = InMemoryStreamStore()
        state = _state()
        store.add("a", state)
        assert store.get("a") is state
        assert "a" in store and len(store) == 1
        assert store.remove("a") is state
        assert store.get("a") is None and len(store) == 0

    def test_duplicate_add_rejected(self):
        store = InMemoryStreamStore()
        store.add("a", _state())
        with pytest.raises(ValueError, match="already stored"):
            store.add("a", _state())

    def test_remove_does_not_count_as_eviction(self):
        store = InMemoryStreamStore()
        store.add("a", _state())
        store.remove("a")
        assert store.evicted_streams == 0

    def test_no_limits_means_no_eviction_ever(self):
        store = InMemoryStreamStore()
        for i in range(100):
            store.add(f"s{i}", _state())
        assert store.sweep() == 0
        assert len(store) == 100 and store.evicted_streams == 0

    def test_ttl_evicts_idle_streams_only(self):
        clock = FakeClock()
        store = InMemoryStreamStore(ttl_s=10.0, clock=clock)
        store.add("idle", _state())
        store.add("busy", _state())
        clock.advance(9.0)
        store.touch("busy")
        clock.advance(2.0)  # idle is 11s old, busy 2s
        assert store.sweep() == 1
        assert store.get("idle") is None
        assert store.get("busy") is not None
        assert store.evicted_streams == 1

    def test_touch_refreshes_ttl(self):
        clock = FakeClock()
        store = InMemoryStreamStore(ttl_s=10.0, clock=clock)
        store.add("a", _state())
        for _ in range(5):
            clock.advance(8.0)
            store.touch("a")
        assert store.sweep() == 0 and len(store) == 1

    def test_max_streams_evicts_lru_at_add(self):
        clock = FakeClock()
        store = InMemoryStreamStore(max_streams=2, clock=clock)
        store.add("a", _state())
        clock.advance(1.0)
        store.add("b", _state())
        clock.advance(1.0)
        store.touch("a")  # b is now least recently active
        store.add("c", _state())
        assert store.names() == ["a", "c"]
        assert store.evicted_streams == 1
        assert len(store) == 2  # cap never exceeded, even pre-sweep

    def test_sweep_stops_at_first_live_stream(self):
        clock = FakeClock()
        store = InMemoryStreamStore(ttl_s=10.0, clock=clock)
        for name in ("a", "b", "c"):
            store.add(name, _state())
            clock.advance(6.0)
        # a idle 18s, b idle 12s, c idle 6s
        assert store.sweep() == 2
        assert store.names() == ["c"]

    def test_stats_surface(self):
        clock = FakeClock()
        store = InMemoryStreamStore(ttl_s=1.0, clock=clock)
        store.add("a", _state())
        clock.advance(2.0)
        store.sweep()
        assert store.stats() == {"streams": 0, "evicted_streams": 1}

    def test_items_in_lru_order(self):
        store = InMemoryStreamStore(max_streams=10)
        store.add("a", _state())
        store.add("b", _state())
        store.touch("a")
        assert [name for name, _ in store.items()] == ["b", "a"]

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError, match="ttl_s"):
            InMemoryStreamStore(ttl_s=0.0)
        with pytest.raises(ValueError, match="max_streams"):
            InMemoryStreamStore(max_streams=0)


class TestGatewayEviction:
    """Eviction semantics through the gateway: evicted == unbound."""

    @pytest.fixture()
    def pool(self):
        d = 3
        rule = Rule.from_box(
            np.full(d, -10.0), np.full(d, 10.0), prediction=1.0
        )
        rule.error = 0.1
        return RuleSystem([rule])

    def test_idle_stream_is_unbound_and_rejected(self, pool):
        clock = FakeClock()
        service = ForecastService(
            store=InMemoryStreamStore(ttl_s=10.0, clock=clock)
        )
        service.bind_system("hot", pool, "m")
        service.bind_system("cold", pool, "m")
        service.ingest([("hot", 0.5), ("cold", 0.5)])
        clock.advance(11.0)
        service.ingest([("hot", 0.5)])  # sweep runs after this batch
        assert service.streams() == ["hot"]
        assert service.stats()["evicted_streams"] == 1
        with pytest.raises(ValueError, match="unknown stream 'cold'"):
            service.ingest([("cold", 0.5)])

    def test_event_in_current_batch_counts_as_activity(self, pool):
        clock = FakeClock()
        service = ForecastService(
            store=InMemoryStreamStore(ttl_s=10.0, clock=clock)
        )
        service.bind_system("a", pool, "m")
        service.ingest([("a", 0.5)])
        clock.advance(11.0)
        # a is idle-expired, but this batch touches it first: survives.
        service.ingest([("a", 0.5)])
        assert service.streams() == ["a"]
        assert service.stats()["evicted_streams"] == 0

    def test_rebound_stream_starts_fresh(self, pool):
        clock = FakeClock()
        service = ForecastService(
            store=InMemoryStreamStore(ttl_s=5.0, clock=clock)
        )
        service.bind_system("s", pool, "m")
        for _ in range(4):
            service.ingest([("s", 0.5)])
        clock.advance(6.0)
        service.bind_system("keepalive", pool, "m")
        service.ingest([("keepalive", 0.5)])  # sweep evicts "s"
        service.bind_system("s", pool, "m")  # re-bind is allowed
        out = service.ingest_one("s", 0.5)
        assert out.t == 0 and not out.ready  # window refills from zero

    def test_default_store_never_evicts(self, pool):
        service = ForecastService()
        service.bind_system("a", pool, "m")
        for _ in range(50):
            service.ingest([("a", 0.5)])
        assert service.stats()["evicted_streams"] == 0
