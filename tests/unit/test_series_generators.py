"""Unit tests for the three series generators and the noise helpers."""

import numpy as np
import pytest

from repro.series.mackey_glass import MackeyGlassParams, mackey_glass, paper_series
from repro.series.noise import add_outliers, ar_process, random_walk, sine_series, white_noise
from repro.series.sunspot import PAPER_N_MONTHS, SunspotParams, sunspot_series
from repro.series.venice import VeniceParams, venice_series


class TestMackeyGlass:
    def test_length_and_finite(self):
        s = mackey_glass(500)
        assert s.shape == (500,)
        assert np.isfinite(s).all()

    def test_deterministic(self):
        assert np.array_equal(mackey_glass(300), mackey_glass(300))

    def test_discard_shifts(self):
        full = mackey_glass(400)
        shifted = mackey_glass(300, discard=100)
        assert np.allclose(full[100:400], shifted)

    def test_chaotic_regime_oscillates(self):
        """λ=17 chaos: the tail must keep crossing its own mean."""
        s = mackey_glass(1000, discard=500)
        centered = s - s.mean()
        crossings = np.sum(np.diff(np.sign(centered)) != 0)
        assert crossings > 20

    def test_amplitude_in_expected_band(self):
        s = mackey_glass(2000, discard=500)
        assert 0.2 < s.min() < 0.6
        assert 1.0 < s.max() < 1.6

    def test_paper_series_volume(self):
        s = paper_series()
        assert s.shape == (5000,)

    def test_stable_fixed_point_at_zero_delay(self):
        # Without delay the ODE is contracting to the a/(b(1+x^10)) balance.
        p = MackeyGlassParams(delay=0.0)
        s = mackey_glass(500, p)
        assert abs(s[-1] - s[-2]) < 1e-4

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MackeyGlassParams(dt=0.3)  # does not divide 1.0
        with pytest.raises(ValueError):
            mackey_glass(0)
        with pytest.raises(ValueError):
            mackey_glass(10, discard=-1)


class TestVenice:
    def test_shape_and_range(self):
        s = venice_series(5000, seed=1)
        assert s.shape == (5000,)
        # §3.2: output ranges roughly -50..150 cm.
        assert -80 < s.min() < 30
        assert 60 < s.max() < 250

    def test_seed_reproducible(self):
        assert np.array_equal(venice_series(1000, seed=7), venice_series(1000, seed=7))
        assert not np.array_equal(
            venice_series(1000, seed=7), venice_series(1000, seed=8)
        )

    def test_semidiurnal_periodicity(self):
        """Autocorrelation must peak near the M2 period (~12.4 h)."""
        s = venice_series(4000, seed=3)
        x = s - s.mean()
        ac = np.correlate(x, x, mode="full")[len(x) - 1 :]
        ac /= ac[0]
        lag = int(np.argmax(ac[8:20])) + 8
        assert 10 <= lag <= 15

    def test_storms_create_heavy_upper_tail(self):
        p = VeniceParams(storm_rate_per_year=60.0)
        with_storms = venice_series(8760, p, seed=5)
        calm = venice_series(
            8760, VeniceParams(storm_rate_per_year=0.0), seed=5
        )
        assert with_storms.max() > calm.max() + 10

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            VeniceParams(surge_phi=1.0)
        with pytest.raises(ValueError):
            VeniceParams(storm_rate_per_year=-1)
        with pytest.raises(ValueError):
            venice_series(0)


class TestSunspot:
    def test_shape_nonnegative(self):
        s = sunspot_series(1200, seed=2)
        assert s.shape == (1200,)
        assert (s >= 0).all()

    def test_paper_length_constant(self):
        # Jan 1749 .. Mar 1977.
        assert PAPER_N_MONTHS == 2739

    def test_cycle_period_about_11_years(self):
        """Dominant FFT period must fall in the 9–14 year band."""
        s = sunspot_series(2739, seed=4)
        x = s - s.mean()
        spectrum = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(len(x), d=1.0)
        spectrum[0] = 0.0
        # Only consider periods below 30 years to skip slow trends.
        valid = freqs > 1.0 / (30 * 12)
        peak = freqs[valid][np.argmax(spectrum[valid])]
        period_years = 1.0 / peak / 12.0
        assert 8.0 < period_years < 15.0

    def test_seed_reproducible(self):
        assert np.array_equal(sunspot_series(500, seed=9), sunspot_series(500, seed=9))

    def test_validation(self):
        with pytest.raises(ValueError):
            sunspot_series(0)
        with pytest.raises(ValueError):
            SunspotParams(rise_fraction=0.99)


class TestNoise:
    def test_white_noise(self):
        assert white_noise(100, seed=1).shape == (100,)
        with pytest.raises(ValueError):
            white_noise(-1)

    def test_ar_process_autocorrelated(self):
        s = ar_process(3000, [0.9], sigma=1.0, seed=1)
        x = s - s.mean()
        r1 = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
        assert 0.8 < r1 < 0.97

    def test_ar_process_validation(self):
        with pytest.raises(ValueError):
            ar_process(0, [0.5])
        with pytest.raises(ValueError):
            ar_process(10, [])

    def test_sine_series_period(self):
        s = sine_series(100, period=25)
        assert s[0] == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(s[:50], s[50:], atol=1e-9)

    def test_random_walk_is_cumsum(self):
        w = random_walk(50, seed=3)
        n = white_noise(50, seed=3)
        assert np.allclose(w, np.cumsum(n))

    def test_add_outliers(self):
        base = sine_series(500, period=50)
        spiked = add_outliers(base, fraction=0.05, magnitude=10, seed=1)
        assert (spiked != base).sum() == 25
        assert np.array_equal(add_outliers(base, fraction=0.0), base)
        with pytest.raises(ValueError):
            add_outliers(base, fraction=1.5)
