"""CI smoke-job selections stay in sync with the tier marker registry.

``benchmarks/_common.py`` declares ``SERVICE_TIERS`` — the service
bench tiers that own a dedicated CI job.  Three places must agree with
it and historically drifted when they were maintained by hand:

* the ``@pytest.mark.<tier>`` markers on the tier tests in
  ``benchmarks/bench_service.py``;
* the marker registration in ``pyproject.toml`` (unregistered markers
  select nothing under ``--strict-markers`` and warn otherwise);
* the ``-m`` expressions in ``.github/workflows/ci.yml`` — each
  dedicated job selects its tier, and the catch-all ``service-smoke``
  job deselects *all* of them (the pre-marker ``-k`` list had already
  drifted: it forgot ``adaptation``, so that tier ran in two jobs).

These tests parse all three as text/AST — no workflow execution — so a
new tier forgotten in any one place fails the tier-1 suite.
"""

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "benchmarks"))

from _common import SERVICE_TIERS, service_smoke_deselect  # noqa: E402


def _bench_service_markers():
    """``{test_name: [tier markers]}`` from the bench file's AST."""
    tree = ast.parse((REPO / "benchmarks" / "bench_service.py").read_text())
    marks = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if not node.name.startswith("test_"):
            continue
        tiers = []
        for deco in node.decorator_list:
            # pytest.mark.<name>, with or without call parentheses
            target = deco.func if isinstance(deco, ast.Call) else deco
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "mark"
            ):
                tiers.append(target.attr)
        marks[node.name] = tiers
    return marks


class TestTierRegistry:
    def test_every_tier_marks_exactly_one_bench_test(self):
        marks = _bench_service_markers()
        for tier in SERVICE_TIERS:
            owners = [t for t, ms in marks.items() if tier in ms]
            assert len(owners) == 1, (
                f"tier {tier!r} must mark exactly one bench_service test, "
                f"found {owners}"
            )

    def test_no_unregistered_tier_markers_on_bench_tests(self):
        marks = _bench_service_markers()
        for test, ms in marks.items():
            stray = [m for m in ms if m not in SERVICE_TIERS]
            assert not stray, (
                f"{test} carries markers {stray} missing from "
                "SERVICE_TIERS in benchmarks/_common.py"
            )
            assert len(ms) <= 1, f"{test} carries two tier markers: {ms}"

    def test_markers_registered_with_pytest(self):
        pyproject = (REPO / "pyproject.toml").read_text()
        registered = re.findall(
            r'^\s*"(\w+):', pyproject.split("markers = [", 1)[1], re.M
        )
        for tier in SERVICE_TIERS:
            assert tier in registered, (
                f"tier {tier!r} is not registered under "
                "[tool.pytest.ini_options] markers in pyproject.toml"
            )


def _run_commands(workflow_text):
    """Each ``run:`` command in a workflow as one logical line.

    ``run: >`` folds a command across physical lines; ``run: |`` holds
    one command per line.  Either way the continuation lines are the
    ones indented deeper than the ``run:`` key itself.
    """
    lines = workflow_text.splitlines()
    commands = []
    i = 0
    while i < len(lines):
        m = re.match(r"(\s*)run:\s*(.*)$", lines[i])
        if not m:
            i += 1
            continue
        indent, rest = len(m.group(1)), m.group(2).strip()
        i += 1
        block = []
        while i < len(lines) and (
            not lines[i].strip()
            or len(lines[i]) - len(lines[i].lstrip()) > indent
        ):
            if lines[i].strip():
                block.append(lines[i].strip())
            i += 1
        if rest == ">":
            commands.append(" ".join(block))
        elif rest == "|":
            commands.extend(block)
        else:
            commands.append(rest)
    return commands


class TestWorkflowSelections:
    def _bench_service_commands(self):
        text = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        return [
            c
            for c in _run_commands(text)
            if "benchmarks/bench_service.py" in c
        ]

    def _service_m_expressions(self):
        """Every ``-m`` expression applied to bench_service.py in CI."""
        exprs = []
        for cmd in self._bench_service_commands():
            # Search after the file path so `python -m pytest` does not
            # shadow the pytest `-m` marker expression.
            tail = cmd.split("benchmarks/bench_service.py", 1)[1]
            m = re.search(r'-m\s+(?:"([^"]+)"|(\S+))', tail)
            if m:
                exprs.append(m.group(1) or m.group(2))
        return exprs

    def test_smoke_jobs_cover_all_tiers_exactly_once(self):
        exprs = self._service_m_expressions()
        deselect = service_smoke_deselect()
        assert deselect in exprs, (
            "the service-smoke job must deselect every dedicated tier "
            f"with -m \"{deselect}\""
        )
        single = [e for e in exprs if e != deselect]
        assert sorted(single) == sorted(SERVICE_TIERS), (
            "each tier in SERVICE_TIERS needs exactly one dedicated "
            f"-m selection in ci.yml; found {single}"
        )

    def test_no_stale_k_selections_on_bench_service(self):
        """Tier selection must go through markers, not name matching."""
        stale = [c for c in self._bench_service_commands() if " -k " in c]
        assert not stale, (
            "bench_service.py tier selection must use -m markers "
            f"(single source of truth), found -k: {stale}"
        )

    def test_nightly_workflow_runs_bench_scale_with_compare(self):
        """The nightly schedule exists, runs real-scale benches, gates
        them against the committed trajectories and uploads results."""
        path = REPO / ".github" / "workflows" / "nightly.yml"
        assert path.exists(), "nightly bench workflow is missing"
        text = path.read_text()
        assert "schedule:" in text and "cron:" in text
        assert "REPRO_BENCH_TINY" not in text, (
            "nightly must run at bench scale, not tiny mode"
        )
        assert "bench run" in text
        assert "bench compare" in text
        assert "upload-artifact" in text
