"""Unit tests for repro.core.intervals."""

import numpy as np
import pytest

from repro.core.intervals import (
    WILDCARD,
    Interval,
    clip_intervals,
    effective_bounds,
    intervals_contain,
    pack_intervals,
    unpack_intervals,
)


class TestInterval:
    def test_contains_inclusive_bounds(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(2.0)
        assert iv.contains(1.5)
        assert not iv.contains(0.999)
        assert not iv.contains(2.001)

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            Interval(3.0, 1.0)

    def test_zero_width_allowed(self):
        iv = Interval(2.0, 2.0)
        assert iv.contains(2.0)
        assert iv.width == 0.0

    def test_wildcard_contains_everything(self):
        star = Interval.star()
        assert star.contains(-1e300)
        assert star.contains(1e300)
        assert star.contains(0.0)
        assert star.wildcard

    def test_width_and_center(self):
        iv = Interval(-2.0, 4.0)
        assert iv.width == 6.0
        assert iv.center == 1.0

    def test_wildcard_width_center(self):
        star = Interval.star()
        assert star.width == np.inf
        assert np.isnan(star.center)

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(1, 3))
        assert Interval(0, 2).intersects(Interval(2, 3))  # touching
        assert not Interval(0, 1).intersects(Interval(2, 3))
        assert Interval(0, 1).intersects(Interval.star())

    def test_union_bounds(self):
        u = Interval(0, 1).union_bounds(Interval(3, 4))
        assert (u.lower, u.upper) == (0, 4)
        assert Interval(0, 1).union_bounds(Interval.star()).wildcard

    def test_shifted(self):
        iv = Interval(1.0, 2.0).shifted(0.5)
        assert (iv.lower, iv.upper) == (1.5, 2.5)
        assert Interval.star().shifted(10).wildcard

    def test_scaled(self):
        iv = Interval(0.0, 4.0).scaled(0.5)
        assert (iv.lower, iv.upper) == (1.0, 3.0)
        with pytest.raises(ValueError):
            Interval(0, 1).scaled(-1.0)

    def test_encode_decode_roundtrip(self):
        iv = Interval(1.25, 7.5)
        assert Interval.decode(*iv.encode()) == iv

    def test_encode_wildcard(self):
        assert Interval.star().encode() == (WILDCARD, WILDCARD)
        assert Interval.decode(WILDCARD, WILDCARD).wildcard

    def test_decode_half_wildcard_raises(self):
        with pytest.raises(ValueError, match="both halves"):
            Interval.decode(WILDCARD, 5.0)


class TestPackedHelpers:
    def test_pack_unpack_roundtrip(self):
        ivs = (Interval(0, 1), Interval.star(), Interval(-5, -2))
        lower, upper, wild = pack_intervals(ivs)
        assert unpack_intervals(lower, upper, wild) == ivs

    def test_pack_wildcard_bounds_are_inf(self):
        lower, upper, wild = pack_intervals([Interval.star()])
        assert lower[0] == -np.inf and upper[0] == np.inf and wild[0]

    def test_effective_bounds_widen_wildcards(self):
        lower = np.array([0.0, 5.0])
        upper = np.array([1.0, 6.0])
        wild = np.array([False, True])
        lo, hi = effective_bounds(lower, upper, wild)
        assert lo[0] == 0.0 and hi[0] == 1.0
        assert lo[1] == -np.inf and hi[1] == np.inf

    def test_intervals_contain_elementwise(self):
        lower = np.array([0.0, 0.0, 0.0])
        upper = np.array([1.0, 1.0, 1.0])
        wild = np.array([False, True, False])
        got = intervals_contain(lower, upper, wild, np.array([0.5, 99.0, 2.0]))
        assert got.tolist() == [True, True, False]

    def test_clip_intervals_preserves_order(self):
        lower = np.array([-10.0, 0.5])
        upper = np.array([10.0, 0.7])
        lo, hi = clip_intervals(lower, upper, 0.0, 1.0)
        assert np.all(lo <= hi)
        assert lo[0] == 0.0 and hi[0] == 1.0
        assert lo[1] == 0.5 and hi[1] == 0.7

    def test_clip_intervals_degenerate_snaps(self):
        # Interval entirely above the clip range collapses at the bound.
        lo, hi = clip_intervals(np.array([5.0]), np.array([6.0]), 0.0, 1.0)
        assert lo[0] == hi[0] == 1.0
