"""Unit tests for repro.parallel (backends, rng, partition)."""

import numpy as np
import pytest

from repro.parallel.backends import (
    ProcessPoolBackend,
    SerialBackend,
    default_workers,
    get_backend,
)
from repro.parallel.partition import chunk_evenly, chunk_ranges, round_robin
from repro.parallel.rng import generator_from_seed, spawn_generators, spawn_seeds


def square(x):
    return x * x


def boom(x):
    raise RuntimeError("worker failure")


class TestSerialBackend:
    def test_map_order(self):
        assert SerialBackend().map(square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialBackend().map(square, []) == []

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError, match="worker failure"):
            SerialBackend().map(boom, [1])

    def test_context_manager(self):
        with SerialBackend() as b:
            assert b.map(square, [2]) == [4]


class TestProcessPoolBackend:
    def test_map_order_parallel(self):
        with ProcessPoolBackend(workers=2) as b:
            assert b.map(square, list(range(20))) == [i * i for i in range(20)]

    def test_single_worker_shortcut(self):
        # workers=1 runs in-process (no pool spawn).
        b = ProcessPoolBackend(workers=1)
        assert b.map(square, [1, 2]) == [1, 4]
        assert b._pool is None

    def test_single_item_shortcut(self):
        b = ProcessPoolBackend(workers=4)
        assert b.map(square, [3]) == [9]
        assert b._pool is None
        b.close()

    def test_exception_propagates(self):
        with ProcessPoolBackend(workers=2) as b:
            with pytest.raises(RuntimeError):
                b.map(boom, list(range(8)))

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)

    def test_close_idempotent(self):
        b = ProcessPoolBackend(workers=2)
        b.map(square, list(range(8)))
        b.close()
        b.close()


class TestFactory:
    def test_get_backend(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        b = get_backend("process", workers=2)
        assert isinstance(b, ProcessPoolBackend)
        b.close()
        with pytest.raises(ValueError):
            get_backend("gpu")

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestRNG:
    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(5, 0)) == 5
        assert spawn_seeds(0, 0) == []
        with pytest.raises(ValueError):
            spawn_seeds(-1)

    def test_streams_independent_and_reproducible(self):
        g1 = spawn_generators(3, root_seed=9)
        g2 = spawn_generators(3, root_seed=9)
        draws1 = [g.uniform(size=4) for g in g1]
        draws2 = [g.uniform(size=4) for g in g2]
        for a, b in zip(draws1, draws2):
            assert np.array_equal(a, b)
        # Different children differ from each other.
        assert not np.array_equal(draws1[0], draws1[1])

    def test_generator_from_seed_passthrough(self):
        g = np.random.default_rng(1)
        assert generator_from_seed(g) is g
        assert isinstance(generator_from_seed(5), np.random.Generator)
        assert isinstance(generator_from_seed(None), np.random.Generator)


class TestPartition:
    def test_chunk_evenly_sizes(self):
        chunks = chunk_evenly(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_chunk_evenly_more_chunks_than_items(self):
        chunks = chunk_evenly([1, 2], 4)
        assert len(chunks) == 4
        assert sum(chunks, []) == [1, 2]

    def test_chunk_ranges_match_chunks(self):
        ranges = chunk_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]

    def test_round_robin(self):
        chunks = round_robin(list(range(7)), 3)
        assert chunks == [[0, 3, 6], [1, 4], [2, 5]]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)
        with pytest.raises(ValueError):
            chunk_ranges(-1, 2)
        with pytest.raises(ValueError):
            round_robin([1], 0)
