"""Unit tests for repro.analysis (tables, plots, report formatting)."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import line_plot, overlay_plot, render_rule
from repro.analysis.experiments import PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE3
from repro.analysis.report import ablation_markdown, table1_markdown
from repro.analysis.tables import format_float, format_table
from repro.core.intervals import Interval
from repro.core.rule import Rule
from repro.metrics.coverage import CoverageScore


class TestFormatTable:
    def test_basic_grid(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 40]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) == {"-"}
        assert "30" in lines[-1]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_float(self):
        assert format_float(1.23456, 2) == "1.23"
        assert format_float(None) == "-"
        assert format_float(float("nan")) == "-"


class TestPaperReferences:
    def test_table1_values_from_paper(self):
        assert PAPER_TABLE1[1] == (91.3, 3.37, 3.30)
        assert PAPER_TABLE1[96] == (99.5, 16.04, None)
        assert len(PAPER_TABLE1) == 8

    def test_table2_values(self):
        assert PAPER_TABLE2[50] == (78.9, 0.025, 0.040, None)
        assert PAPER_TABLE2[85] == (78.2, 0.046, None, 0.050)

    def test_table3_values(self):
        assert PAPER_TABLE3[1] == (100.0, 0.00228, 0.00511, 0.00511)
        assert len(PAPER_TABLE3) == 5


class TestAsciiPlot:
    def test_line_plot_shape(self):
        text = line_plot(np.sin(np.linspace(0, 10, 200)), width=40, height=8)
        lines = text.splitlines()
        assert len(lines) == 9  # 8 rows + legend
        assert "┤" in lines[0] and "┴" in lines[-2]

    def test_overlay_handles_nan_gaps(self):
        real = np.sin(np.linspace(0, 6, 100))
        pred = real.copy()
        pred[40:60] = np.nan
        text = overlay_plot({"real": real, "pred": pred})
        assert "r=real" in text and "p=pred" in text

    def test_overlay_validation(self):
        with pytest.raises(ValueError):
            overlay_plot({})
        with pytest.raises(ValueError, match="lengths differ"):
            overlay_plot({"a": np.zeros(5), "b": np.zeros(6)})
        with pytest.raises(ValueError, match="NaN"):
            overlay_plot({"a": np.full(5, np.nan)})
        with pytest.raises(ValueError):
            overlay_plot({"a": np.zeros(5)}, width=2)
        with pytest.raises(ValueError):
            overlay_plot({"a": np.array([])})

    def test_constant_series_plot(self):
        text = line_plot(np.full(50, 3.0))
        assert text  # no crash on zero span

    def test_render_rule_shows_wildcards_and_prediction(self):
        rule = Rule.from_intervals(
            [Interval(0, 1), Interval.star(), Interval(0.2, 0.6)],
            prediction=0.4,
        )
        text = render_rule(rule, series_range=(0.0, 1.0))
        assert "·" in text  # wildcard column
        assert "P" in text  # prediction marker
        assert "y1" in text

    def test_render_rule_without_range(self):
        rule = Rule.from_intervals([Interval(0, 2), Interval(1, 3)], prediction=2.5)
        assert "P" in render_rule(rule)

    def test_render_all_wildcard_rule(self):
        rule = Rule.from_intervals([Interval.star(), Interval.star()])
        text = render_rule(rule)
        assert "·" in text


class TestReportMarkdown:
    def _score(self, err, cov):
        return CoverageScore(error=err, coverage=cov, n_total=100,
                             n_predicted=int(100 * cov))

    def test_table1_markdown_includes_paper_numbers(self):
        from repro.analysis.experiments import Table1Row

        rows = [Table1Row(horizon=4, rs=self._score(8.1, 0.98), nn_error=9.9)]
        text = table1_markdown(rows)
        assert "9.55" in text  # paper NN value at h=4
        assert "8.10" in text
        assert "98.0" in text

    def test_ablation_markdown(self):
        from repro.analysis.experiments import AblationRow

        rows = [AblationRow("init=random", self._score(0.1, 0.5), "x")]
        text = ablation_markdown(rows, "NMSE")
        assert "init=random" in text and "NMSE" in text
