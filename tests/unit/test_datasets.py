"""Unit tests for repro.series.datasets (paper splits)."""

import numpy as np
import pytest

from repro.series.datasets import load_mackey_glass, load_sunspot, load_venice


class TestVenice:
    def test_bench_volumes(self):
        d = load_venice(scale="bench")
        assert len(d.train) == 6000
        assert len(d.validation) == 1500
        assert d.scaler is None  # raw centimetres

    def test_paper_volumes(self):
        d = load_venice(scale="paper")
        assert len(d.train) == 45_000
        assert len(d.validation) == 10_000

    def test_chronological(self):
        d = load_venice(scale="bench", seed=1)
        from repro.series.venice import venice_series

        full = venice_series(7500, seed=1)
        assert np.array_equal(d.train, full[:6000])
        assert np.array_equal(d.validation, full[6000:])

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            load_venice(scale="giant")

    def test_windows_helper(self):
        d = load_venice(scale="bench")
        tr, va = d.windows(24, 4)
        assert tr.d == va.d == 24
        assert tr.horizon == va.horizon == 4
        assert len(tr) == 6000 - 24 - 4 + 1


class TestMackeyGlass:
    def test_paper_split(self):
        d = load_mackey_glass()
        assert len(d.train) == 1000   # samples [3500, 4500)
        assert len(d.validation) == 500  # [4500, 5000)

    def test_normalized_to_unit_interval(self):
        d = load_mackey_glass()
        assert d.train.min() == pytest.approx(0.0)
        assert d.train.max() == pytest.approx(1.0)
        # validation uses the *training* scaler: may exceed [0,1] slightly
        assert -0.5 < d.validation.min() and d.validation.max() < 1.5

    def test_scaler_invertible(self):
        d = load_mackey_glass()
        raw = d.scaler.inverse_transform(d.train)
        from repro.series.mackey_glass import mackey_glass

        assert np.allclose(raw, mackey_glass(5000)[3500:4500])


class TestSunspot:
    def test_paper_split_volumes(self):
        d = load_sunspot()
        assert len(d.train) == (1919 - 1749 + 1) * 12  # 2052 months
        # Jan 1929 .. Mar 1977 = 579 months
        assert len(d.validation) == 579

    def test_standardized(self):
        d = load_sunspot()
        assert d.train.min() == pytest.approx(0.0)
        assert d.train.max() == pytest.approx(1.0)

    def test_gap_years_excluded(self):
        """1920–1928 must appear in neither split."""
        d = load_sunspot(seed=1749)
        from repro.series.sunspot import paper_series

        full = paper_series(seed=1749)
        n_train = 2052
        skip = 108
        scaled_gap = d.scaler.transform(full[n_train : n_train + skip])
        # Gap samples are not the first validation samples.
        assert not np.allclose(scaled_gap[:10], d.validation[:10])
