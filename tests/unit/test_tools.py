"""Unit tests for the repo tools (docs generators + docstring gate).

These mirror the CI checks so a drift is caught locally by tier-1, not
first on a PR: ``docs/api.md`` must equal ``tools/gen_api_docs.py``
output (same discipline as the generated scenario catalog), and the
docstring/``__all__`` audit must stay clean over every audited tree.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def run_tool(*argv):
    return subprocess.run(
        [sys.executable, *argv], capture_output=True, text=True, cwd=REPO
    )


class TestApiDocs:
    def test_docs_api_md_in_sync(self):
        """docs/api.md is generated; a docstring change must ship the
        regenerated file (the CI sync check runs this same --check)."""
        assert (REPO / "docs" / "api.md").exists(), "docs/api.md missing"
        proc = run_tool("tools/gen_api_docs.py", "--check")
        assert proc.returncode == 0, (
            "docs/api.md is stale — regenerate with "
            "'python tools/gen_api_docs.py > docs/api.md'\n" + proc.stdout
        )

    def test_check_detects_drift(self, tmp_path, monkeypatch):
        """--check must actually fail on a modified file."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "gen_api_docs", REPO / "tools" / "gen_api_docs.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        generated = mod.render()
        assert generated.startswith("# API reference")
        # Simulate drift by pointing the module at a stale copy.
        stale = tmp_path / "docs"
        stale.mkdir()
        (stale / "api.md").write_text(generated + "\n<!-- stale -->\n")
        monkeypatch.setattr(mod, "REPO", tmp_path)
        assert mod.main(["--check"]) == 1

    def test_reference_covers_the_serving_surface(self):
        text = (REPO / "docs" / "api.md").read_text()
        for anchor in (
            "## `repro.serve`",
            "## `repro.service.registry`",
            "## `repro.service.gateway`",
            "## `repro.io.serialize`",
            "## `repro.core.compiled`",
            "class ModelRegistry",
            "class ForecastService",
            "predict_windows",
        ):
            assert anchor in text, f"docs/api.md missing {anchor!r}"


class TestDocstringGate:
    def test_audit_clean(self):
        proc = run_tool("tools/check_docstrings.py")
        assert proc.returncode == 0, proc.stdout

    def test_audit_covers_core_and_service(self):
        proc = run_tool("tools/check_docstrings.py", "--stats")
        assert "src/repro/core/compiled.py" in proc.stdout
        assert "src/repro/service/gateway.py" in proc.stdout
        assert "src/repro/service/registry.py" in proc.stdout
        assert "src/repro/serve.py" in proc.stdout
