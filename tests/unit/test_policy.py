"""Unit tests for the guardrail policy layer (`repro.service.policy`).

Table-driven over a grid of spec shapes: hysteresis anti-flap
behaviour, the injected-clock rate limiter, abstain-on-zero-match, the
REASON_CODES wire-format pin, spec validation errors, bulk tallying and
the vectorized prefilter, and per-shard stats merging.

Run directly (``python tests/unit/test_policy.py``) or under pytest.
"""

import json
import math
import os
import sys
import tempfile

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "src")
)

from repro.core.predictor import rich_from_moments  # noqa: E402
from repro.service.policy import (  # noqa: E402
    ACTIONS,
    REASON_CODES,
    Decision,
    PolicyEngine,
    PolicyError,
    PolicySpec,
    load_policy,
    merge_policy_stats,
)


def decide_value(engine, value, stream="s", t=0, n_rules=5,
                 confidence=0.8, width=0.1):
    """One forecast with everything healthy except the given value."""
    return engine.decide(stream, t, True, True, n_rules, value,
                         confidence, width)


# ---------------------------------------------------------------------------
# wire-format pins


def test_reason_codes_are_pinned():
    """Reason codes are wire format: consumers key on the exact
    strings, so changing or removing one is a breaking change this
    test refuses to let past silently (appending is fine)."""
    assert REASON_CODES == (
        "not-ready",
        "no-prediction",
        "low-match",
        "low-confidence",
        "wide-interval",
        "cap-exceeded",
        "threshold-above",
        "threshold-below",
        "hysteresis-hold",
        "rate-limited",
    )
    assert ACTIONS == ("pass", "alert", "suppress", "abstain")


def test_decision_to_dict_wire_shape():
    d = Decision("suppress", ("low-confidence", "wide-interval"))
    assert d.to_dict() == {
        "action": "suppress",
        "reasons": ["low-confidence", "wide-interval"],
    }


# ---------------------------------------------------------------------------
# evaluation order: abstentions come first


def test_not_ready_abstains_before_everything():
    engine = PolicyEngine(PolicySpec(alert_above=0.0, value_cap=0.1))
    d = engine.decide("s", 3, False, False, 0, float("nan"), 0.0, 0.0)
    assert d == Decision("abstain", ("not-ready",))


def test_zero_match_abstains_with_no_prediction():
    """A ready stream whose window matched no rule abstains — the NaN
    value never reaches threshold or guardrail comparisons."""
    engine = PolicyEngine(PolicySpec(alert_above=0.0, value_cap=0.1))
    d = engine.decide("s", 9, True, False, 0, float("nan"), 0.0, 0.0)
    assert d == Decision("abstain", ("no-prediction",))
    assert engine.stats()["reasons"] == {"no-prediction": 1}


def test_min_matches_floor_abstains():
    engine = PolicyEngine(PolicySpec(min_matches=3))
    assert decide_value(engine, 0.5, n_rules=2) == Decision(
        "abstain", ("low-match",)
    )
    assert decide_value(engine, 0.5, n_rules=3).action == "pass"


# ---------------------------------------------------------------------------
# guardrails


def test_guardrail_reasons_accumulate():
    engine = PolicyEngine(PolicySpec(
        min_confidence=0.5, max_interval_width=0.2, value_cap=1.0,
    ))
    d = decide_value(engine, 5.0, confidence=0.1, width=0.9)
    assert d.action == "suppress"
    assert d.reasons == ("low-confidence", "wide-interval", "cap-exceeded")


def test_value_cap_is_symmetric():
    engine = PolicyEngine(PolicySpec(value_cap=1.0))
    assert decide_value(engine, -1.5).reasons == ("cap-exceeded",)
    assert decide_value(engine, 1.5).reasons == ("cap-exceeded",)
    assert decide_value(engine, 0.99).action == "pass"


def test_guardrail_suppression_leaves_latch_untouched():
    """An untrustworthy forecast is no evidence the alert condition
    ended: a latched stream stays latched through a suppression and
    does not re-alert when the next healthy value is still high."""
    engine = PolicyEngine(PolicySpec(alert_above=1.0, min_confidence=0.5))
    assert decide_value(engine, 1.5).action == "alert"
    d = decide_value(engine, 0.2, confidence=0.1)  # suppressed, low value
    assert d == Decision("suppress", ("low-confidence",))
    # still latched: a high value holds instead of re-alerting
    assert decide_value(engine, 1.4).reasons == ("hysteresis-hold",)


# ---------------------------------------------------------------------------
# thresholds, latching, hysteresis


def test_alert_fires_on_rising_edge_only():
    engine = PolicyEngine(PolicySpec(alert_above=1.0))
    assert decide_value(engine, 1.2) == Decision(
        "alert", ("threshold-above",)
    )
    # still above: latched, holds instead of re-alerting
    assert decide_value(engine, 1.3).reasons == ("hysteresis-hold",)
    assert engine.stats()["alerts"] == 1


def test_hysteresis_band_prevents_flapping():
    """Oscillating across the threshold inside the band yields exactly
    one alert; only a drop below ``alert_above - hysteresis`` re-arms."""
    engine = PolicyEngine(PolicySpec(alert_above=1.0, hysteresis=0.3))
    flapping = [1.1, 0.95, 1.05, 0.9, 1.2, 0.75, 1.05]
    actions = [decide_value(engine, v).action for v in flapping]
    # one alert at 1.1; 0.95/0.9 are inside the band (>= 0.7) so the
    # latch holds through the oscillation; 0.75 is also >= 0.7 — still
    # held; the final 1.05 therefore does NOT re-alert.
    assert actions == ["alert"] + ["pass"] * 6
    assert engine.stats()["alerts"] == 1
    # dropping below 0.7 clears, and the next crossing re-alerts
    assert decide_value(engine, 0.6).action == "pass"
    assert decide_value(engine, 1.01).action == "alert"
    assert engine.stats()["alerts"] == 2


def test_zero_hysteresis_still_edge_triggered():
    engine = PolicyEngine(PolicySpec(alert_above=1.0))
    assert decide_value(engine, 1.1).action == "alert"
    assert decide_value(engine, 0.999).action == "pass"  # cleared
    assert decide_value(engine, 1.1).action == "alert"  # re-armed


def test_alert_below_side():
    engine = PolicyEngine(PolicySpec(alert_below=-1.0, hysteresis=0.2))
    assert decide_value(engine, -1.1) == Decision(
        "alert", ("threshold-below",)
    )
    assert decide_value(engine, -0.9).reasons == ("hysteresis-hold",)
    assert decide_value(engine, -0.7).action == "pass"  # cleared
    assert decide_value(engine, -1.2).action == "alert"


def test_both_thresholds_switch_latch_sides():
    """Swinging straight from one alert side to the other re-alerts:
    the new side is a fresh rising edge."""
    engine = PolicyEngine(PolicySpec(alert_above=1.0, alert_below=-1.0))
    assert decide_value(engine, 1.5).reasons == ("threshold-above",)
    assert decide_value(engine, -1.5).reasons == ("threshold-below",)
    assert decide_value(engine, 1.5).reasons == ("threshold-above",)


def test_latches_are_per_stream():
    engine = PolicyEngine(PolicySpec(alert_above=1.0))
    assert decide_value(engine, 1.5, stream="a").action == "alert"
    assert decide_value(engine, 1.5, stream="b").action == "alert"
    assert engine.stats()["latched_streams"] == 2
    engine.forget("a")
    assert engine.stats()["latched_streams"] == 1


# ---------------------------------------------------------------------------
# rate limiting


def test_step_rate_limiter_downgrades_to_suppression():
    engine = PolicyEngine(PolicySpec(
        alert_above=1.0, max_alerts=2, rate_window=10.0,
    ))
    # three rising edges inside one 10-step window: third is limited
    seq = [(0, 1.5), (2, 0.5), (4, 1.5), (6, 0.5), (8, 1.5)]
    out = [decide_value(engine, v, t=t).action for t, v in seq]
    assert out == ["alert", "pass", "alert", "pass", "suppress"]
    limited = decide_value(engine, 1.5, t=9)
    assert limited.reasons == ("hysteresis-hold",)  # still latched
    stats = engine.stats()
    assert stats["alerts"] == 2
    assert stats["reasons"]["rate-limited"] == 1
    # the window is trailing: by t=20 both marks (t=0, t=4) expired
    engine2 = PolicyEngine(PolicySpec(
        alert_above=1.0, max_alerts=1, rate_window=10.0,
    ))
    assert decide_value(engine2, 1.5, t=0).action == "alert"
    assert decide_value(engine2, 0.5, t=5).action == "pass"
    assert decide_value(engine2, 1.5, t=6).action == "suppress"
    assert decide_value(engine2, 0.5, t=15).action == "pass"
    assert decide_value(engine2, 1.5, t=20).action == "alert"


def test_rate_limited_alert_keeps_threshold_reason():
    engine = PolicyEngine(PolicySpec(
        alert_below=-1.0, max_alerts=1, rate_window=100.0,
    ))
    assert decide_value(engine, -1.5, t=0).action == "alert"
    assert decide_value(engine, 0.0, t=1).action == "pass"
    d = decide_value(engine, -1.5, t=2)
    assert d == Decision("suppress", ("threshold-below", "rate-limited"))


def test_seconds_rate_limiter_uses_injected_clock():
    """Wall-clock windows consult only the injected clock — the test
    owns time, so the schedule is deterministic."""
    now = [100.0]
    engine = PolicyEngine(
        PolicySpec(alert_above=1.0, max_alerts=1, rate_window=30.0,
                   rate_unit="seconds"),
        clock=lambda: now[0],
    )
    assert decide_value(engine, 1.5, t=0).action == "alert"
    assert decide_value(engine, 0.5, t=1).action == "pass"
    now[0] = 110.0  # 10s later: budget still spent
    assert decide_value(engine, 1.5, t=2).action == "suppress"
    assert decide_value(engine, 0.5, t=3).action == "pass"
    now[0] = 131.0  # mark at t=100 now outside the 30s window
    assert decide_value(engine, 1.5, t=4).action == "alert"


def test_rate_budget_counts_emitted_alerts_not_crossings():
    """Rate-limited (suppressed) crossings spend no budget."""
    engine = PolicyEngine(PolicySpec(
        alert_above=1.0, max_alerts=1, rate_window=5.0,
    ))
    assert decide_value(engine, 1.5, t=0).action == "alert"
    assert decide_value(engine, 0.5, t=1).action == "pass"
    assert decide_value(engine, 1.5, t=2).action == "suppress"
    assert decide_value(engine, 0.5, t=3).action == "pass"
    # t=6: the t=0 mark expired; the suppressed crossing left no mark
    assert decide_value(engine, 1.5, t=6).action == "alert"


# ---------------------------------------------------------------------------
# spec validation


def test_spec_validation_errors():
    cases = [
        ({"alert_above": float("nan")}, "finite"),
        ({"alert_above": float("inf")}, "finite"),
        ({"alert_above": "high"}, "number"),
        ({"alert_above": True}, "number"),
        ({"hysteresis": -0.1}, "hysteresis"),
        ({"alert_above": 1.0, "alert_below": 1.0}, "strictly less"),
        ({"alert_above": 1.0, "alert_below": 2.0}, "strictly less"),
        ({"min_confidence": 1.5}, "min_confidence"),
        ({"min_confidence": -0.1}, "min_confidence"),
        ({"max_interval_width": -1.0}, "max_interval_width"),
        ({"min_matches": -1}, "min_matches"),
        ({"min_matches": 1.5}, "integer"),
        ({"min_matches": True}, "integer"),
        ({"value_cap": 0.0}, "value_cap"),
        ({"value_cap": -2.0}, "value_cap"),
        ({"max_alerts": 0, "rate_window": 10.0}, "max_alerts"),
        ({"max_alerts": 2.5, "rate_window": 10.0}, "integer"),
        ({"max_alerts": 3}, "rate_window"),
        ({"rate_unit": "minutes"}, "rate_unit"),
        ({"no_such_field": 1}, "unknown"),
    ]
    for fields, needle in cases:
        try:
            PolicySpec.from_dict(fields)
        except PolicyError as err:
            assert needle in str(err), (fields, err)
        else:
            raise AssertionError(f"{fields} must be rejected")


def test_from_dict_rejects_non_dict():
    for bad in ([1, 2], "spec", 7):
        try:
            PolicySpec.from_dict(bad)
        except PolicyError:
            pass
        else:
            raise AssertionError(f"{bad!r} must be rejected")


def test_engine_rejects_non_spec():
    try:
        PolicyEngine(42)
    except PolicyError as err:
        assert "PolicySpec" in str(err)
    else:
        raise AssertionError("non-spec must be rejected")


def test_spec_round_trips_through_dict():
    spec = PolicySpec(alert_above=1.0, hysteresis=0.2, min_matches=2,
                      max_alerts=3, rate_window=24.0)
    assert PolicySpec.from_dict(spec.to_dict()) == spec
    assert PolicySpec().to_dict() == {}  # defaults stay implicit


def test_load_policy_file_and_errors():
    with tempfile.TemporaryDirectory() as tmp:
        good = os.path.join(tmp, "policy.json")
        with open(good, "w", encoding="utf-8") as fh:
            json.dump({"alert_above": 110.0, "hysteresis": 8.0}, fh)
        spec = load_policy(good)
        assert spec.alert_above == 110.0 and spec.hysteresis == 8.0

        bad = os.path.join(tmp, "broken.json")
        with open(bad, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        try:
            load_policy(bad)
        except PolicyError as err:
            assert "not valid JSON" in str(err)
        else:
            raise AssertionError("bad JSON must be rejected")


# ---------------------------------------------------------------------------
# bulk tallying and the vectorized prefilter


def test_tally_matches_equivalent_decide_calls():
    """``tally(singleton, n)`` must be indistinguishable from ``n``
    decide() calls that reach the same stateless verdict."""
    spec = PolicySpec(alert_above=1.0, min_matches=2)
    bulk = PolicyEngine(spec)
    serial = PolicyEngine(spec)
    bulk.tally(bulk.PASS, 3)
    bulk.tally(bulk.NOT_READY, 2)
    bulk.tally(bulk.NO_PREDICTION, 1)
    bulk.tally(bulk.LOW_MATCH, 2)
    bulk.tally(bulk.PASS, 0)  # no-op
    for _ in range(3):
        decide_value(serial, 0.5)
    for _ in range(2):
        serial.decide("s", 0, False, False, 0, float("nan"), 0.0, 0.0)
    serial.decide("s", 0, True, False, 0, float("nan"), 0.0, 0.0)
    for _ in range(2):
        decide_value(serial, 0.5, n_rules=1)
    assert bulk.stats() == serial.stats()


def _rich_batch(values, counts):
    values = np.asarray(values, dtype=np.float64)
    counts = np.asarray(counts, dtype=np.int64)
    predicted = counts > 0
    m2 = np.where(predicted, 0.01 * counts, 0.0)
    out = np.where(predicted, values, np.nan)
    return rich_from_moments(out, predicted, counts, m2)


def test_prefilter_certain_pass_rows():
    spec = PolicySpec(alert_above=1.0, alert_below=-1.0, min_matches=2,
                      min_confidence=0.3, max_interval_width=1.0,
                      value_cap=3.0)
    engine = PolicyEngine(spec)
    batch = _rich_batch(
        values=[0.5, 1.5, -1.5, 0.0, 0.2],
        counts=[5, 5, 5, 0, 1],
    )
    fast = engine.prefilter(batch)
    # row 0 passes everything; 1/2 cross thresholds; 3 has no
    # prediction (NaN value fails the positive comparisons); 4 is
    # below the match floor.
    assert fast.tolist() == [True, False, False, False, False]
    # and prefilter-True rows really decide to a plain pass
    d = engine.decide("fresh", 0, True, True, 5, 0.5,
                      float(batch.confidence[0]),
                      float(batch.interval_hi[0] - batch.interval_lo[0]))
    assert d == engine.PASS


def test_prefilter_is_nan_conservative():
    """NaN in any compared field routes the row to the slow path
    (False), never to a silent pass."""
    engine = PolicyEngine(PolicySpec(alert_above=1.0))
    batch = _rich_batch(values=[float("nan"), 0.0], counts=[3, 3])
    # force a NaN value on a predicted row
    batch.values[0] = float("nan")
    assert engine.prefilter(batch).tolist() == [False, True]


def test_prefilter_with_empty_spec_passes_predicted_rows():
    engine = PolicyEngine(PolicySpec())
    batch = _rich_batch(values=[0.5, 0.0], counts=[1, 0])
    assert engine.prefilter(batch).tolist() == [True, False]


# ---------------------------------------------------------------------------
# stats plumbing


def test_stats_account_for_every_event():
    engine = PolicyEngine(PolicySpec(alert_above=1.0, min_matches=1))
    decide_value(engine, 0.5)
    decide_value(engine, 1.5)
    engine.decide("s", 0, False, False, 0, float("nan"), 0.0, 0.0)
    engine.tally(engine.PASS, 4)
    s = engine.stats()
    assert s["evaluated"] == 7
    assert (
        s["passes"] + s["alerts"] + s["suppressions"] + s["abstentions"]
        == 7
    )


def test_reset_clears_state_and_counters():
    engine = PolicyEngine(PolicySpec(alert_above=1.0, max_alerts=1,
                                     rate_window=10.0))
    decide_value(engine, 1.5)
    engine.reset()
    s = engine.stats()
    assert s["evaluated"] == 0 and s["latched_streams"] == 0
    assert s["reasons"] == {}
    # after reset the same crossing is a fresh rising edge again
    assert decide_value(engine, 1.5).action == "alert"


def test_merge_policy_stats_sums_fields():
    a = PolicyEngine(PolicySpec(alert_above=1.0))
    b = PolicyEngine(PolicySpec(alert_above=1.0))
    decide_value(a, 1.5, stream="x")
    decide_value(a, 0.5, stream="x")
    decide_value(b, 1.5, stream="y")
    b.decide("y", 0, False, False, 0, float("nan"), 0.0, 0.0)
    merged = merge_policy_stats([a.stats(), b.stats()])
    assert merged["evaluated"] == 4
    assert merged["alerts"] == 2
    assert merged["passes"] == 1
    assert merged["abstentions"] == 1
    # a's 0.5 cleared x's latch (zero hysteresis); only y stays latched
    assert merged["latched_streams"] == 1
    assert merged["reasons"] == {"threshold-above": 2, "not-ready": 1}
    assert merge_policy_stats([]) == {
        "evaluated": 0, "passes": 0, "alerts": 0, "suppressions": 0,
        "abstentions": 0, "latched_streams": 0, "reasons": {},
    }


def _main():
    mod = sys.modules[__name__]
    names = sorted(
        n for n in dir(mod)
        if n.startswith("test_") and callable(getattr(mod, n))
    )
    for name in names:
        getattr(mod, name)()
        print(f"ok {name}")
    print(f"{len(names)} policy unit tests passed")


if __name__ == "__main__":
    _main()
