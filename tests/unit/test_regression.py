"""Unit tests for repro.core.regression."""

import numpy as np
import pytest

from repro.core.regression import fit_predicting_part


@pytest.fixture
def linear_data(rng):
    X = rng.uniform(-1, 1, size=(60, 4))
    true_coeffs = np.array([1.0, -2.0, 0.5, 3.0])
    v = X @ true_coeffs + 0.75
    return X, v, true_coeffs


class TestLinearMode:
    def test_exact_recovery_on_noiseless_data(self, linear_data):
        X, v, true_coeffs = linear_data
        part = fit_predicting_part(X, v, mode="linear", ridge=0.0)
        assert part.coeffs is not None
        assert np.allclose(part.coeffs[:-1], true_coeffs, atol=1e-8)
        assert part.coeffs[-1] == pytest.approx(0.75, abs=1e-8)
        assert part.error < 1e-8

    def test_error_is_max_abs_residual(self, rng):
        X = rng.uniform(-1, 1, size=(50, 2))
        v = X @ np.array([1.0, 1.0])
        v[7] += 0.5  # a single outlier drives the max residual
        part = fit_predicting_part(X, v, mode="linear", ridge=0.0)
        fitted = X @ part.coeffs[:-1] + part.coeffs[-1]
        assert part.error == pytest.approx(np.max(np.abs(v - fitted)))

    def test_small_matched_set_falls_back_to_constant(self, rng):
        X = rng.uniform(size=(3, 5))  # 3 points < D+2 = 7
        v = rng.uniform(size=3)
        part = fit_predicting_part(X, v, mode="linear")
        assert part.coeffs is None
        assert part.prediction == pytest.approx(v.mean())

    def test_min_points_linear_override(self, rng):
        X = rng.uniform(size=(3, 5))
        v = np.array([1.0, 2.0, 3.0])
        part = fit_predicting_part(X, v, mode="linear", min_points_linear=2)
        assert part.coeffs is not None

    def test_ridge_bounds_degenerate_fit(self):
        # Two identical rows: unregularized normal equations are singular.
        X = np.ones((4, 3))
        v = np.array([1.0, 2.0, 3.0, 4.0])
        part = fit_predicting_part(X, v, mode="linear", min_points_linear=2)
        assert np.isfinite(part.error)
        assert np.all(np.isfinite(part.coeffs))

    def test_prediction_is_mean_fitted(self, linear_data):
        X, v, _ = linear_data
        part = fit_predicting_part(X, v, mode="linear", ridge=0.0)
        assert part.prediction == pytest.approx(v.mean(), abs=1e-8)


class TestConstantMode:
    def test_mean_and_max_residual(self):
        X = np.zeros((4, 2))
        v = np.array([0.0, 1.0, 2.0, 7.0])
        part = fit_predicting_part(X, v, mode="constant")
        assert part.prediction == pytest.approx(2.5)
        assert part.error == pytest.approx(4.5)
        assert part.coeffs is None
        assert part.n_matched == 4

    def test_single_point(self):
        part = fit_predicting_part(np.zeros((1, 3)), np.array([5.0]), "constant")
        assert part.prediction == 5.0
        assert part.error == 0.0


class TestValidation:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="zero matches"):
            fit_predicting_part(np.empty((0, 3)), np.empty(0))

    def test_bad_mode(self, rng):
        with pytest.raises(ValueError, match="unknown predicting mode"):
            fit_predicting_part(rng.uniform(size=(5, 2)), rng.uniform(size=5), "cubic")

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            fit_predicting_part(rng.uniform(size=(5, 2)), rng.uniform(size=4))

    def test_1d_X_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            fit_predicting_part(np.zeros(5), np.zeros(5))
