"""Property-based tests for windowing, metrics, scalers, serialization."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.intervals import Interval
from repro.core.rule import Rule
from repro.io.serialize import rule_from_dict, rule_to_dict
from repro.metrics.errors import galvan_error, mae, mse, nmse, rmse
from repro.series.windowing import MinMaxScaler, make_windows

series_strategy = hnp.arrays(
    np.float64,
    st.integers(10, 200),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestWindowingProperties:
    @given(series_strategy, st.integers(1, 6), st.integers(1, 4))
    def test_alignment_identity(self, series, d, horizon):
        assume(len(series) >= d + horizon)
        X, y = make_windows(series, d, horizon)
        n = X.shape[0]
        assert n == len(series) - d - horizon + 1
        for i in range(0, n, max(1, n // 5)):
            assert np.array_equal(X[i], series[i : i + d])
            assert y[i] == series[i + d - 1 + horizon]

    @given(series_strategy)
    def test_every_window_value_from_series(self, series):
        assume(len(series) >= 5)
        X, _ = make_windows(series, 3, 2)
        assert np.isin(X.ravel(), series).all()


class TestScalerProperties:
    @given(series_strategy)
    def test_roundtrip_identity(self, values):
        assume(np.ptp(values) > 1e-9)
        s = MinMaxScaler().fit(values)
        back = s.inverse_transform(s.transform(values))
        assert np.allclose(back, values, rtol=1e-9, atol=1e-6)

    @given(series_strategy)
    def test_transform_is_monotone(self, values):
        """Sorting commutes with the affine map (up to float rounding)."""
        assume(np.ptp(values) > 1e-9)
        s = MinMaxScaler().fit(values)
        t_sorted = s.transform(np.sort(values))
        assert np.all(np.diff(t_sorted) >= -1e-12)


pred_pairs = st.integers(2, 100).flatmap(
    lambda n: st.tuples(
        hnp.arrays(np.float64, n, elements=st.floats(-1e3, 1e3, allow_nan=False)),
        hnp.arrays(np.float64, n, elements=st.floats(-1e3, 1e3, allow_nan=False)),
    )
)


class TestMetricProperties:
    @given(pred_pairs)
    def test_rmse_nonnegative_and_zero_iff_equal(self, pair):
        t, p = pair
        assert rmse(t, p) >= 0
        assert rmse(t, t) == 0.0

    @given(pred_pairs)
    def test_rmse_symmetric(self, pair):
        t, p = pair
        assert rmse(t, p) == rmse(p, t)

    @given(pred_pairs)
    def test_mse_is_rmse_squared(self, pair):
        t, p = pair
        assert np.isclose(mse(t, p), rmse(t, p) ** 2, rtol=1e-10)

    @given(pred_pairs)
    def test_mae_bounded_by_rmse(self, pair):
        t, p = pair
        assert mae(t, p) <= rmse(t, p) + 1e-9

    @given(pred_pairs, st.integers(0, 50))
    def test_galvan_error_scales_with_horizon(self, pair, horizon):
        t, p = pair
        e0 = galvan_error(t, p, 0)
        eh = galvan_error(t, p, horizon)
        # Larger horizon divides by a larger constant.
        assert eh <= e0 + 1e-12

    @given(pred_pairs, st.floats(0.1, 10))
    def test_nmse_scale_invariant(self, pair, scale):
        t, p = pair
        assume(np.var(t) > 1e-9)
        a = nmse(t, p)
        b = nmse(t * scale, p * scale)
        assert np.isclose(a, b, rtol=1e-6)


@st.composite
def arbitrary_rules(draw):
    d = draw(st.integers(1, 6))
    ivs = []
    for _ in range(d):
        if draw(st.integers(0, 3)) == 0:
            ivs.append(Interval.star())
        else:
            a = draw(st.floats(-1e3, 1e3, allow_nan=False))
            w = draw(st.floats(0, 1e3, allow_nan=False))
            ivs.append(Interval(a, a + w))
    rule = Rule.from_intervals(ivs)
    rule.prediction = draw(st.floats(-1e3, 1e3, allow_nan=False))
    rule.error = draw(st.floats(0, 1e3, allow_nan=False))
    rule.n_matched = draw(st.integers(0, 1000))
    rule.fitness = draw(st.floats(-1e3, 1e3, allow_nan=False))
    if draw(st.booleans()):
        rule.coeffs = np.array(
            [draw(st.floats(-10, 10, allow_nan=False)) for _ in range(d + 1)]
        )
    return rule


class TestSerializationProperties:
    @given(arbitrary_rules())
    @settings(max_examples=60, deadline=None)
    def test_dict_roundtrip_preserves_behaviour(self, rule):
        clone = rule_from_dict(rule_to_dict(rule))
        rng = np.random.default_rng(0)
        X = rng.uniform(-1e3, 1e3, size=(25, rule.n_lags))
        from repro.core.matching import match_mask

        assert np.array_equal(match_mask(rule, X), match_mask(clone, X))
        assert np.allclose(rule.output(X), clone.output(X))
