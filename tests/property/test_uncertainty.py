"""Property tests: rich (uncertainty-carrying) predictions vs oracles.

Two bitwise contracts are pinned here:

1. **Rich scoring never perturbs the point path.**  For any pool and
   any batch, ``predict(rich=True)`` returns the exact bit pattern of
   ``predict(rich=False)`` in ``values`` / ``predicted`` /
   ``n_rules_used`` — across the single-pattern fast path, the sparse
   pruning path, the dense wildcard-heavy fallback and block
   boundaries.

2. **The compiled rich moments equal the naive per-rule oracle.**  A
   from-scratch two-pass loop over ``match_mask`` + ``rule.output``
   (mean first, then squared deviations from that mean in ascending
   rule order) is recomputed inside this file — independent of
   ``RuleSystem.predict(compiled=False)`` — and the kernel's
   match-count / dispersion / interval / confidence must match it
   bit for bit.

A third property backs the gateway's vectorized policy shortcut: the
prefilter-fast-path decisions the serving gateway emits are identical
to a fresh :class:`~repro.service.policy.PolicyEngine` replaying the
same forecasts one :meth:`decide` at a time, and the two engines'
counters agree exactly (the claim referenced from
``repro/service/gateway.py``).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import CompiledRuleSystem
from repro.core.matching import match_mask
from repro.core.predictor import RuleSystem
from repro.service import ForecastService
from repro.service.policy import PolicyEngine, PolicySpec

from test_compiled_predictor import random_pool


def naive_rich(rules, patterns):
    """The from-scratch rich oracle: per-rule masks, two passes.

    Returns ``(values, predicted, counts, dispersion, interval_lo,
    interval_hi, confidence)`` computed with the exact float operations
    the rich contract promises: sequential scatter-adds in ascending
    rule order, ``sqrt(m2 / k)`` dispersion, ``value -/+ dispersion``
    interval and ``(k / (k + 1)) / (1 + dispersion)`` confidence.
    """
    patterns = np.atleast_2d(np.asarray(patterns, dtype=np.float64))
    n = patterns.shape[0]
    totals = np.zeros(n)
    counts = np.zeros(n, dtype=np.int64)
    for rule in rules:
        mask = match_mask(rule, patterns)
        if not mask.any():
            continue
        totals[mask] += rule.output(patterns[mask])
        counts[mask] += 1
    predicted = counts > 0
    values = np.full(n, np.nan)
    values[predicted] = totals[predicted] / counts[predicted]
    m2 = np.zeros(n)
    for rule in rules:
        mask = match_mask(rule, patterns)
        if not mask.any():
            continue
        dev = rule.output(patterns[mask]) - values[mask]
        m2[mask] += dev * dev
    dispersion = np.zeros(n)
    dispersion[predicted] = np.sqrt(m2[predicted] / counts[predicted])
    interval_lo = values - dispersion
    interval_hi = values + dispersion
    confidence = np.zeros(n)
    k = counts[predicted].astype(np.float64)
    confidence[predicted] = (k / (k + 1.0)) / (1.0 + dispersion[predicted])
    return (
        values, predicted, counts, dispersion,
        interval_lo, interval_hi, confidence,
    )


def assert_rich_matches_oracle(rich, oracle):
    values, predicted, counts, disp, lo, hi, conf = oracle
    assert np.array_equal(rich.values, values, equal_nan=True)
    assert np.array_equal(rich.predicted, predicted)
    assert np.array_equal(rich.n_rules_used, counts)
    assert np.array_equal(rich.dispersion, disp)
    assert np.array_equal(rich.interval_lo, lo, equal_nan=True)
    assert np.array_equal(rich.interval_hi, hi, equal_nan=True)
    assert np.array_equal(rich.confidence, conf)
    # Derived fields never smuggle NaN past an abstention: dispersion
    # and confidence are finite everywhere, intervals are NaN exactly
    # where the point value is.
    assert np.isfinite(rich.dispersion).all()
    assert np.isfinite(rich.confidence).all()
    assert np.array_equal(np.isnan(rich.interval_lo), np.isnan(rich.values))
    assert np.array_equal(np.isnan(rich.interval_hi), np.isnan(rich.values))


def assert_point_fields_bitwise(rich, plain):
    assert np.array_equal(rich.values, plain.values, equal_nan=True)
    assert np.array_equal(rich.predicted, plain.predicted)
    assert np.array_equal(rich.n_rules_used, plain.n_rules_used)


class TestRichVsOracle:
    @given(
        st.integers(1, 8),       # d
        st.integers(1, 40),      # rules
        st.integers(0, 120),     # patterns
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_pools(self, d, n_rules, n_patterns, seed):
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, n_rules, d)
        system = RuleSystem(rules)
        patterns = rng.uniform(-0.2, 1.2, size=(n_patterns, d))
        oracle = naive_rich(rules, patterns)
        for compiled in (False, True):
            rich = system.predict(patterns, compiled=compiled, rich=True)
            plain = system.predict(patterns, compiled=compiled)
            assert_rich_matches_oracle(rich, oracle)
            assert_point_fields_bitwise(rich, plain)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_block_boundaries(self, seed):
        """Rich moments stay exact across internal block splits."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 15, 4)
        compiled = CompiledRuleSystem(rules, block_size=7)
        for n in (2, 6, 7, 8, 13, 14, 15, 50):
            patterns = rng.uniform(0, 1, size=(n, 4))
            rich = compiled.predict(patterns, rich=True)
            assert_rich_matches_oracle(rich, naive_rich(rules, patterns))
            assert_point_fields_bitwise(rich, compiled.predict(patterns))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_dense_fallback(self, seed):
        """Wildcard-heavy pools route through the dense kernel branch."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 12, 3, p_wildcard=0.9, width=0.9)
        system = RuleSystem(rules)
        patterns = rng.uniform(0, 1, size=(90, 3))
        rich = system.predict(patterns, compiled=True, rich=True)
        assert_rich_matches_oracle(rich, naive_rich(rules, patterns))
        assert_point_fields_bitwise(rich, system.predict(patterns))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_single_pattern_fast_path(self, seed):
        """The n=1 streaming step (k=0 and k>=1) equals the oracle."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 25, 4)
        system = RuleSystem(rules)
        for lo, hi in ((0.0, 1.0), (5.0, 6.0)):  # matching and abstaining
            x = rng.uniform(lo, hi, size=(1, 4))
            rich = system.predict(x, compiled=True, rich=True)
            assert_rich_matches_oracle(rich, naive_rich(rules, x))
            assert_point_fields_bitwise(rich, system.predict(x))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_all_abstain_batch(self, seed):
        """No matches anywhere: zero counts, zero dispersion/confidence,
        NaN values and intervals."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 10, 3, p_wildcard=0.0)
        system = RuleSystem(rules)
        patterns = rng.uniform(5.0, 6.0, size=(20, 3))
        rich = system.predict(patterns, compiled=True, rich=True)
        assert not rich.predicted.any()
        assert not rich.dispersion.any() and not rich.confidence.any()
        assert np.isnan(rich.values).all()
        assert_rich_matches_oracle(rich, naive_rich(rules, patterns))

    def test_empty_pool(self):
        rich = RuleSystem([]).predict(np.zeros((4, 3)), rich=True)
        assert not rich.predicted.any()
        assert np.isnan(rich.values).all()
        assert not rich.dispersion.any() and not rich.confidence.any()

    def test_empty_batch(self):
        rng = np.random.default_rng(0)
        system = RuleSystem(random_pool(rng, 5, 3))
        for compiled in (False, True):
            rich = system.predict(
                np.empty((0, 3)), compiled=compiled, rich=True
            )
            assert rich.values.shape == (0,)
            assert rich.dispersion.shape == (0,)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_single_matching_rule_zero_dispersion(self, seed):
        """k == 1: the lone rule agrees with itself — dispersion 0,
        degenerate interval, confidence exactly 1/2."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 1, 3, p_wildcard=1.0)
        system = RuleSystem(rules)
        patterns = rng.uniform(0, 1, size=(10, 3))
        rich = system.predict(patterns, compiled=True, rich=True)
        assert (rich.n_rules_used == 1).all()
        assert not rich.dispersion.any()
        assert np.array_equal(rich.interval_lo, rich.values)
        assert np.array_equal(rich.interval_hi, rich.values)
        assert (rich.confidence == 0.5).all()
        assert_rich_matches_oracle(rich, naive_rich(rules, patterns))


def _policy_specs():
    """A grid of spec shapes that exercise every prefilter condition."""
    return st.sampled_from([
        PolicySpec(),
        PolicySpec(alert_above=0.3, hysteresis=0.2),
        PolicySpec(alert_below=-0.3, hysteresis=0.1),
        PolicySpec(alert_above=0.4, alert_below=-0.4, hysteresis=0.15,
                   max_alerts=2, rate_window=10.0),
        PolicySpec(min_confidence=0.5),
        PolicySpec(max_interval_width=0.2),
        PolicySpec(value_cap=0.5),
        PolicySpec(min_matches=3),
        PolicySpec(alert_above=0.2, hysteresis=0.05, min_matches=2,
                   min_confidence=0.3, max_interval_width=0.8,
                   value_cap=2.0, max_alerts=1, rate_window=5.0),
    ])


class TestGatewayFastPathEqualsDecide:
    """The gateway's prefilter shortcut is indistinguishable from pure
    per-event :meth:`PolicyEngine.decide` — the property the inline
    comment in ``repro/service/gateway.py`` leans on."""

    @given(_policy_specs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_decisions_and_counters_match_serial_replay(self, spec, seed):
        rng = np.random.default_rng(seed)
        d = 4
        rules = random_pool(rng, 20, d, p_wildcard=0.5, width=0.5)
        system = RuleSystem(rules)
        service = ForecastService()
        n_streams, n_events = 6, 30
        names = [f"s{i}" for i in range(n_streams)]
        for name in names:
            service.bind_system(name, system, model="m")
        engine = PolicyEngine(spec)
        service.attach_policy(engine)
        forecasts = []
        for step in range(n_events):
            # Values wander in and out of the boxes and across the
            # thresholds; occasional far-out values force abstentions.
            batch = []
            for j, name in enumerate(names):
                v = float(np.sin(0.3 * step + j) + rng.normal(0, 0.3))
                if rng.random() < 0.05:
                    v += 10.0
                batch.append((name, v))
            forecasts.extend(service.ingest(batch))

        oracle = PolicyEngine(spec)
        replayed = oracle.evaluate(forecasts)
        for f, expect in zip(forecasts, replayed):
            assert f.decision == expect, (f, expect)
        assert engine.stats() == oracle.stats()
