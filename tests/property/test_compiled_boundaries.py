"""Property tests pinning the matcher's regime boundaries.

The staged matcher in :mod:`repro.core.compiled` picks a kernel per
block: micro blocks (``n_block <= MICRO_BLOCK``) take the adaptive
dense-prefix walk with a priced one-shot verify
(``MICRO_DENSE_PREFIX`` / ``MICRO_VERIFY_BUDGET``), bulk blocks take
the priced first pass that goes sparse or dense around
``DENSE_SWITCH``.  Every one of those regime choices is a pure
performance decision — the bitwise contract says no output bit may
depend on which kernel ran.  These tests straddle each boundary on
purpose: batch sizes either side of ``MICRO_BLOCK``, candidate
densities either side of ``DENSE_SWITCH`` (including forcing both
branches on the *same* block), and verify budgets clamped to both
extremes — always against the per-rule oracle
(``RuleSystem.predict(compiled=False)``) and the legacy matcher,
pair-for-pair where the pair lists are reachable.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import CompiledRuleSystem
from repro.core.predictor import RuleSystem

from test_compiled_predictor import (
    assert_batches_bitwise_equal,
    random_pool,
)


def _pairs(compiled, patterns):
    """The (rule, pattern) pair lists for ``patterns`` as one block."""
    blkT = np.ascontiguousarray(patterns.T)
    return compiled._match_pairs(blkT, patterns.shape[0])


def assert_pairs_equivalent(a, b):
    """Same pair *set*, both in the rule-major order the sums need.

    The bitwise contract constrains pair order only as far as the
    sequential ``bincount`` reductions see it: for any one pattern the
    matching rules must arrive in ascending rule order, which
    rule-major emission guarantees.  Within one rule the pattern order
    is free (each pair lands in a different accumulator slot), so
    kernels are compared on the canonically sorted pair set plus the
    rule-major invariant — not on their raw emission order.
    """
    (r_a, i_a), (r_b, i_b) = a, b
    assert np.all(np.diff(r_a) >= 0), "pairs not rule-major"
    assert np.all(np.diff(r_b) >= 0), "pairs not rule-major"
    assert np.array_equal(
        np.c_[r_a, i_a][np.lexsort((i_a, r_a))],
        np.c_[r_b, i_b][np.lexsort((i_b, r_b))],
    )


class TestMicroBlockBoundary:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_batch_sizes_straddle_micro_block(self, seed):
        """n = MICRO_BLOCK-1 / MICRO_BLOCK / MICRO_BLOCK+1 stay exact.

        At 256 the block runs the micro kernel, at 257 the bulk
        kernel — the oracle must not be able to tell which.
        """
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 30, 5)
        system = RuleSystem(rules)
        edge = CompiledRuleSystem.MICRO_BLOCK
        for n in (edge - 1, edge, edge + 1, 2 * edge, 2 * edge + 1):
            patterns = rng.uniform(-0.1, 1.1, size=(n, 5))
            assert_batches_bitwise_equal(
                system.predict(patterns, compiled=False),
                CompiledRuleSystem(rules).predict(patterns),
            )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_mixed_bulk_and_micro_blocks_in_one_batch(self, seed):
        """A batch whose block loop emits both kernel flavours.

        ``block_size=300`` over 556 patterns yields a 300-wide bulk
        block followed by a 256-wide micro block; the accumulators are
        shared, so any regime-dependent drift would corrupt the sums.
        """
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 20, 4)
        system = RuleSystem(rules)
        compiled = CompiledRuleSystem(rules, block_size=300)
        patterns = rng.uniform(-0.1, 1.1, size=(556, 4))
        assert_batches_bitwise_equal(
            system.predict(patterns, compiled=False),
            compiled.predict(patterns),
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_pair_order_parity_staged_vs_legacy_across_widths(self, seed):
        """Both matcher generations emit identical pair *lists*.

        Stronger than output parity: the staged micro/bulk kernels
        must emit the same pair set, rule-major, as the legacy
        single-lag-scan kernel, at widths on both sides of the micro
        boundary (1 crosses into the dense switch too).
        """
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 25, 4)
        staged = CompiledRuleSystem(rules)
        legacy = CompiledRuleSystem(rules, matcher="legacy")
        edge = CompiledRuleSystem.MICRO_BLOCK
        for n in (1, 3, 17, edge - 1, edge, edge + 1):
            patterns = rng.uniform(-0.1, 1.1, size=(n, 4))
            assert_pairs_equivalent(
                _pairs(staged, patterns), _pairs(legacy, patterns)
            )


class TestDenseSparseCrossover:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_forced_sparse_and_dense_branches_agree(self, seed):
        """Force *both* bulk branches on the same block: same pairs.

        ``DENSE_SWITCH`` is read off the instance, so clamping it to
        -1 (every block counts as dense) and 2 (every block counts as
        sparse) runs the dense-prefix walk and the sparse
        extract-and-verify path over identical inputs.
        """
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 20, 5, p_wildcard=0.5, width=0.6)
        patterns = rng.uniform(-0.1, 1.1, size=(400, 5))  # bulk width
        dense = CompiledRuleSystem(rules)
        dense.DENSE_SWITCH = -1.0
        sparse = CompiledRuleSystem(rules)
        sparse.DENSE_SWITCH = 2.0
        assert_pairs_equivalent(
            _pairs(dense, patterns), _pairs(sparse, patterns)
        )
        assert_batches_bitwise_equal(
            RuleSystem(rules).predict(patterns, compiled=False),
            dense.predict(patterns),
        )

    def test_density_sweep_actually_crosses_the_switch(self):
        """A width sweep visits both sides of ``DENSE_SWITCH``.

        Deterministic, so the test fails loudly if a constant change
        ever stops the sweep from exercising both branches (rather
        than silently testing one branch twice).
        """
        rng = np.random.default_rng(7)
        patterns = rng.uniform(0, 1, size=(400, 4))
        fractions = []
        for width, p_wc in ((0.08, 0.0), (0.3, 0.2), (0.9, 0.8)):
            rules = random_pool(
                np.random.default_rng(7), 25, 4,
                p_wildcard=p_wc, width=width,
            )
            compiled = CompiledRuleSystem(rules)
            blkT = np.ascontiguousarray(patterns.T)
            j0 = compiled._lag_order[0]
            first = (blkT[j0] >= compiled._loT[j0][:, None]) & (
                blkT[j0] <= compiled._hiT[j0][:, None]
            )
            fractions.append(
                np.count_nonzero(first) / (compiled.n_rules * 400)
            )
            assert_batches_bitwise_equal(
                RuleSystem(rules).predict(patterns, compiled=False),
                compiled.predict(patterns),
            )
        switch = CompiledRuleSystem.DENSE_SWITCH
        assert min(fractions) <= switch, (
            f"sweep never reached the sparse side: {fractions}"
        )
        assert max(fractions) > switch, (
            f"sweep never reached the dense side: {fractions}"
        )


class TestMicroVerifyBudget:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_budget_extremes_agree_pairwise(self, seed):
        """Both micro exit paths emit the legacy pair lists exactly.

        Budget 0 can never afford an early exit, so the walk goes
        dense through every lag and the one-shot verify sees an empty
        lag set; an effectively infinite budget exits right at
        ``MICRO_DENSE_PREFIX`` and verifies the maximal tail.  Either
        way the pair set must match the legacy kernel's.
        """
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 25, 6, p_wildcard=0.4, width=0.5)
        legacy = CompiledRuleSystem(rules, matcher="legacy")
        patterns = rng.uniform(-0.1, 1.1, size=(200, 6))  # micro width
        legacy_pairs = _pairs(legacy, patterns)
        for budget in (0, 1 << 60):
            micro = CompiledRuleSystem(rules)
            micro.MICRO_VERIFY_BUDGET = budget
            assert_pairs_equivalent(_pairs(micro, patterns), legacy_pairs)
            assert_batches_bitwise_equal(
                RuleSystem(rules).predict(patterns, compiled=False),
                micro.predict(patterns),
            )

    @given(st.integers(0, 2**31 - 1), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_prefix_depths_agree_with_oracle(self, seed, prefix):
        """Every forced dense-prefix depth keeps the bitwise contract.

        Sweeping ``MICRO_DENSE_PREFIX`` from 1 to the full lag count
        moves the dense-walk/one-shot-verify split across every
        position, including the degenerate all-dense and
        nearly-all-verify ends.
        """
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 20, 6)
        system = RuleSystem(rules)
        patterns = rng.uniform(-0.1, 1.1, size=(97, 6))
        compiled = CompiledRuleSystem(rules)
        compiled.MICRO_DENSE_PREFIX = prefix
        compiled.MICRO_VERIFY_BUDGET = 1 << 60  # exit as soon as allowed
        assert_batches_bitwise_equal(
            system.predict(patterns, compiled=False),
            compiled.predict(patterns),
        )
