"""Orchestrator determinism properties.

Two invariants the orchestrator must keep for results to be trustable:

1. **Backend invariance** — the same plan produces bitwise-identical
   payloads on :class:`SerialBackend` and
   :class:`ProcessPoolBackend` (every task derives its RNG stream from
   its own root seed, so the fan-out axis cannot leak in).
2. **Kill/resume invariance** — interrupting a sweep at *every*
   checkpoint boundary and resuming produces exactly the results of an
   uninterrupted run, without re-executing finished tasks.

The ``smoke`` scenario (tiny by construction, registered like any other
scenario — no monkeypatching, so process-pool workers see it too) keeps
each task sub-second.
"""

import pytest

from repro.analysis.orchestrator import ExperimentOrchestrator
from repro.io.cache import spec_hash
from repro.parallel.backends import ProcessPoolBackend

SCENARIO = "smoke"


def _payload_hash(run):
    """Canonical hash of all payloads in plan order (NaN-safe equality)."""
    assert run.complete
    return spec_hash([run.results[t.task_id].payload for t in run.tasks])


@pytest.fixture(scope="module")
def serial_run():
    """The uninterrupted in-memory reference run."""
    return ExperimentOrchestrator().run([SCENARIO])


class TestBackendInvariance:
    def test_process_pool_bitwise_identical(self, serial_run):
        backend = ProcessPoolBackend(workers=2)
        try:
            run = ExperimentOrchestrator(backend=backend).run([SCENARIO])
        finally:
            backend.close()
        assert run.complete
        for task in serial_run.tasks:
            assert (
                run.results[task.task_id].payload
                == serial_run.results[task.task_id].payload
            )
        assert _payload_hash(run) == _payload_hash(serial_run)


class TestRuntimeRegisteredScenarios:
    def test_custom_scenario_fans_out_and_resumes(self, tmp_path):
        """Specs ride on tasks, so a scenario registered at runtime works
        under process-pool fan-out (whose spawn workers rebuild the
        registry with built-ins only) and across a resume from a fresh
        process that never re-registered it."""
        from repro.analysis.scenarios import (
            DatasetSpec,
            GridPoint,
            ScenarioSpec,
            register,
        )

        register(ScenarioSpec(
            name="custom-prop",
            title="runtime-registered scenario",
            section="test",
            kind="table",
            dataset=DatasetSpec("mackey_glass"),
            config_factory="mackey",
            grid=tuple(
                GridPoint(
                    label=f"h{h}", horizon=h,
                    config_overrides=(
                        ("d", 6), ("population_size", 12), ("generations", 100),
                    ),
                )
                for h in (10, 30)
            ),
            metric="nmse",
            coverage_target=0.90,
            max_executions=1,
            seed=7,
        ), replace=True)

        reference = ExperimentOrchestrator().run(["custom-prop"])

        # (a) Both tasks execute inside spawn workers, whose registry
        # only holds the built-ins.
        backend = ProcessPoolBackend(workers=2)
        try:
            pooled = ExperimentOrchestrator(backend=backend).run(
                ["custom-prop"]
            )
        finally:
            backend.close()
        assert pooled.complete
        assert _payload_hash(pooled) == _payload_hash(reference)

        # (b) Resume after the registration is gone — exactly the state
        # of a fresh process that never called register().
        state = tmp_path / "state"
        partial = ExperimentOrchestrator(state_dir=state).run(
            ["custom-prop"], max_tasks=1
        )
        assert partial.n_executed == 1
        from repro.analysis import scenarios as _scenarios

        _scenarios._SCENARIOS.pop("custom-prop")
        try:
            resumed = ExperimentOrchestrator(state_dir=state).resume()
        finally:
            _scenarios._SCENARIOS.pop("custom-prop", None)
        assert resumed.complete
        assert _payload_hash(resumed) == _payload_hash(reference)


class TestKillResumeInvariance:
    def test_every_checkpoint_boundary(self, serial_run, tmp_path):
        n = len(serial_run.tasks)
        assert n >= 3  # the property needs interior boundaries
        for k in range(n + 1):
            state = tmp_path / f"boundary{k}"
            partial = ExperimentOrchestrator(state_dir=state).run(
                [SCENARIO], max_tasks=k
            )
            assert partial.n_executed == min(k, n)
            # A fresh orchestrator = a fresh process after the kill.
            resumed = ExperimentOrchestrator(state_dir=state).resume()
            assert resumed.complete
            # Checkpointed tasks are rehydrated, never re-executed.
            assert resumed.n_cached == min(k, n)
            assert resumed.n_executed == n - min(k, n)
            assert _payload_hash(resumed) == _payload_hash(serial_run)

    def test_finished_sweep_reruns_fully_cached(self, serial_run, tmp_path):
        state = tmp_path / "state"
        first = ExperimentOrchestrator(state_dir=state).run([SCENARIO])
        assert first.complete and first.n_executed == len(first.tasks)
        again = ExperimentOrchestrator(state_dir=state).run([SCENARIO])
        assert again.complete
        assert again.n_executed == 0  # cached re-run skips execution
        assert _payload_hash(again) == _payload_hash(first)
        assert _payload_hash(first) == _payload_hash(serial_run)

    def test_changed_plan_resets_the_checkpoint(self, tmp_path):
        state = tmp_path / "state"
        first = ExperimentOrchestrator(state_dir=state).run(
            [SCENARIO], max_tasks=1
        )
        assert first.n_executed == 1
        # A different seed is a different plan: nothing may be reused.
        other = ExperimentOrchestrator(state_dir=state).run(
            [SCENARIO], seed=1234
        )
        assert other.complete
        assert other.n_executed == len(other.tasks)
        assert other.n_cached == 0
