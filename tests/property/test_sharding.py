"""Sharded gateway properties: routing, parity, cleanup.

Three contracts from ``repro.service.sharding``:

* **ring** — the consistent-hash ring balances 10k+ streams within
  its documented :attr:`ConsistentHashRing.BALANCE_BOUND` and remaps
  minimally on membership change: a join only pulls keys *to* the new
  node (about ``streams / (n + 1)`` of them), a leave only moves the
  left node's keys, and survivors never trade keys with each other;
* **parity** — :class:`ShardedForecastService` is bitwise identical
  to a single-process :class:`ForecastService` fed the same events,
  for any batch partitioning, any worker count, and through the
  pipelined ``submit``/``collect`` path with backpressure engaged;
* **cleanup** — no ``/dev/shm`` segment survives ``close()``, even
  when a worker was killed -9 mid-service (workers attach untracked;
  only the parent unlinks).

Worker processes spawn per test *class* (module-scoped fixtures keep
the spawn cost amortised); the pure-ring properties run without any
process machinery.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictor import RuleSystem
from repro.core.rule import Rule
from repro.parallel.shm import live_segments
from repro.service import ForecastService
from repro.service.sharding import (
    ConsistentHashRing,
    ShardConfig,
    ShardedForecastService,
    _stable_hash,
)

N_KEYS = 10_000
KEYS = [f"stream-{i:05d}" for i in range(N_KEYS)]


# -- the ring, pure ----------------------------------------------------------


class TestRingBalance:
    @pytest.mark.parametrize("workers", [2, 3, 4, 8])
    def test_balance_bound_at_10k_streams(self, workers):
        """Max node share <= BALANCE_BOUND x ideal — the documented bound."""
        ring = ConsistentHashRing(f"shard-{i}" for i in range(workers))
        counts = Counter(ring.node_for(k) for k in KEYS)
        assert len(counts) == workers  # nobody starves
        ideal = N_KEYS / workers
        assert max(counts.values()) <= ConsistentHashRing.BALANCE_BOUND * ideal

    def test_hash_is_process_stable(self):
        """blake2b, not salted hash(): pinned so restarts route alike."""
        assert _stable_hash("stream-00000") == 0x558C2F95301EBD4F

    def test_routing_is_insertion_order_insensitive(self):
        a = ConsistentHashRing(["n0", "n1", "n2"])
        b = ConsistentHashRing(["n2", "n0", "n1"])
        assert [a.node_for(k) for k in KEYS[:500]] == [
            b.node_for(k) for k in KEYS[:500]
        ]

    def test_duplicate_and_missing_nodes_rejected(self):
        ring = ConsistentHashRing(["n0"])
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add_node("n0")
        with pytest.raises(ValueError, match="not on the ring"):
            ring.remove_node("ghost")
        with pytest.raises(ValueError, match="no nodes"):
            ConsistentHashRing().node_for("k")


class TestRingRemapping:
    @settings(max_examples=25, deadline=None)
    @given(n_nodes=st.integers(2, 8), seed=st.integers(0, 2**16))
    def test_join_moves_only_to_the_new_node(self, n_nodes, seed):
        """Every remapped key lands on the joiner, and not too many move."""
        rng = np.random.default_rng(seed)
        sample = [KEYS[i] for i in rng.choice(N_KEYS, 2_000, replace=False)]
        ring = ConsistentHashRing(f"n{i}" for i in range(n_nodes))
        before = {k: ring.node_for(k) for k in sample}
        ring.add_node("joiner")
        moved = [k for k in sample if ring.node_for(k) != before[k]]
        assert all(ring.node_for(k) == "joiner" for k in moved)
        bound = ConsistentHashRing.BALANCE_BOUND * len(sample) / (n_nodes + 1)
        assert len(moved) <= bound

    @settings(max_examples=25, deadline=None)
    @given(n_nodes=st.integers(2, 8), victim=st.integers(0, 7),
           seed=st.integers(0, 2**16))
    def test_leave_moves_exactly_the_left_nodes_keys(
        self, n_nodes, victim, seed
    ):
        """Survivors keep every key they had; orphans all re-home."""
        rng = np.random.default_rng(seed)
        sample = [KEYS[i] for i in rng.choice(N_KEYS, 2_000, replace=False)]
        ring = ConsistentHashRing(f"n{i}" for i in range(n_nodes))
        gone = f"n{victim % n_nodes}"
        before = {k: ring.node_for(k) for k in sample}
        ring.remove_node(gone)
        for k in sample:
            after = ring.node_for(k)
            if before[k] == gone:
                assert after != gone
            else:
                assert after == before[k]

    def test_join_then_leave_restores_routing(self):
        ring = ConsistentHashRing(["n0", "n1", "n2"])
        before = [ring.node_for(k) for k in KEYS[:1000]]
        ring.add_node("n3")
        ring.remove_node("n3")
        assert [ring.node_for(k) for k in KEYS[:1000]] == before


# -- sharded service parity --------------------------------------------------


D = 6
N_STREAMS = 12
STREAM_NAMES = [f"s-{i:02d}" for i in range(N_STREAMS)]


def _pool(n_rules, seed, prediction_scale=1.0):
    """A small mixed constant/linear pool over [-1, 1]^D windows."""
    rng = np.random.default_rng(seed)
    rules = []
    for k in range(n_rules):
        center = rng.uniform(-1, 1, size=D)
        rule = Rule.from_box(
            center - 0.6, center + 0.6,
            prediction=float(rng.normal()) * prediction_scale,
        )
        rule.wildcard = rng.random(D) < 0.2
        rule.error = 1.0
        if k % 2 == 0:
            rule.coeffs = np.concatenate(
                [rng.normal(size=D) * 0.1, [float(rng.normal())]]
            )
        rules.append(rule)
    return RuleSystem(rules)


def _bind_all(service):
    big, small = _pool(24, seed=1), _pool(10, seed=2)
    for i, name in enumerate(STREAM_NAMES):
        service.bind_system(
            name, big if i % 3 else small, "big" if i % 3 else "small"
        )


def _forecast_key(f):
    """Every Forecast field, NaN-safe for bitwise comparison."""
    return (f.stream, f.t, repr(f.value), f.predicted, f.n_rules_used,
            f.ready, f.model, f.version)


@pytest.fixture(scope="module")
def sharded():
    """One 3-worker service reused by every parity example."""
    service = ShardedForecastService(
        config=ShardConfig(workers=3, max_pending_batches=2)
    )
    _bind_all(service)
    yield service
    service.close()
    assert live_segments() == []


@pytest.fixture(scope="module")
def reference():
    service = ForecastService()
    _bind_all(service)
    return service


class TestShardedParity:
    """Bitwise identity with a single-process gateway.

    The module-scoped services accumulate state across examples —
    which is the point: parity must hold along the *whole* interleaved
    history, not per fresh service.  Both sides see the same events in
    the same order, so their streams stay in lockstep.
    """

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_bitwise_identical_under_random_partitions(
        self, data, sharded, reference
    ):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        n_events = int(rng.integers(20, 120))
        picks = rng.integers(0, N_STREAMS, size=n_events)
        events = [
            (STREAM_NAMES[s], float(rng.normal())) for s in picks
        ]
        # Random partitioning into micro-batches.
        out_ref, out_shard, i = [], [], 0
        while i < len(events):
            k = int(rng.integers(1, 40))
            out_ref.extend(reference.ingest(events[i:i + k]))
            out_shard.extend(sharded.ingest(events[i:i + k]))
            i += k
        assert [_forecast_key(f) for f in out_ref] == [
            _forecast_key(f) for f in out_shard
        ]

    def test_pipelined_submit_collect_is_bitwise_too(
        self, sharded, reference
    ):
        """Deep pipelining (backpressure engaged) changes nothing."""
        rng = np.random.default_rng(99)
        batches = []
        for _ in range(12):
            n = int(rng.integers(5, 30))
            picks = rng.integers(0, N_STREAMS, size=n)
            batches.append(
                [(STREAM_NAMES[s], float(rng.normal())) for s in picks]
            )
        ref_out = [f for b in batches for f in reference.ingest(b)]
        tickets = [sharded.submit(b) for b in batches]  # all in flight
        shard_out = [f for t in tickets for f in sharded.collect(t)]
        assert [_forecast_key(f) for f in ref_out] == [
            _forecast_key(f) for f in shard_out
        ]

    def test_large_pipelined_batches_do_not_deadlock(
        self, sharded, reference
    ):
        """Batches whose replies overflow the pipe's kernel buffer.

        A worker blocked sending a multi-hundred-KiB reply stops
        reading; pipelining another large batch into it used to
        deadlock both sides in ``send``.  The parent's per-shard
        reader thread is the fix — this replay (several thousand
        forecasts per in-flight reply) hangs forever without it.
        """
        rng = np.random.default_rng(7)
        batches = []
        for _ in range(3):
            picks = rng.integers(0, N_STREAMS, size=4_000)
            batches.append(
                [(STREAM_NAMES[s], float(rng.normal())) for s in picks]
            )
        ref_out = [f for b in batches for f in reference.ingest(b)]
        tickets = [sharded.submit(b) for b in batches]
        shard_out = [f for t in tickets for f in sharded.collect(t)]
        assert [_forecast_key(f) for f in ref_out] == [
            _forecast_key(f) for f in shard_out
        ]

    def test_stats_merge_matches_single_process(self, sharded, reference):
        ref, sh = reference.stats(), sharded.stats()
        for key in ("streams", "events", "ready_steps", "predicted_steps",
                    "evicted_streams", "models", "coverage", "per_stream"):
            assert ref[key] == sh[key], key
        assert len(sh["per_shard"]) == 3
        assert sum(s["streams"] for s in sh["per_shard"]) == N_STREAMS

    def test_batch_validation_is_atomic_across_shards(self, sharded):
        """A bad event dispatches nothing — no shard sees the batch."""
        before = sharded.stats()["events"]
        with pytest.raises(ValueError, match="unknown stream"):
            sharded.ingest([(STREAM_NAMES[0], 1.0), ("ghost", 1.0)])
        with pytest.raises(ValueError, match="non-finite"):
            sharded.ingest([(STREAM_NAMES[0], 1.0),
                            (STREAM_NAMES[1], float("nan"))])
        assert sharded.stats()["events"] == before

    def test_routing_is_stable_and_total(self, sharded):
        owners = {name: sharded.shard_of(name) for name in STREAM_NAMES}
        assert set(owners.values()) <= {0, 1, 2}
        assert {sharded.shard_of(n) for n in STREAM_NAMES} == set(
            owners.values()
        )
        with pytest.raises(ValueError, match="unknown stream"):
            sharded.shard_of("ghost")

    def test_rebinding_a_bound_stream_rejected(self, sharded):
        with pytest.raises(ValueError, match="already bound"):
            sharded.bind_system(STREAM_NAMES[0], _pool(5, seed=7), "dup")


# -- lifecycle and cleanup ---------------------------------------------------


class TestShardedLifecycle:
    def test_worker_kill_leaks_no_segments(self):
        """-9 a worker mid-service: close() still clears /dev/shm.

        Workers attach segments untracked and never own them; only
        the parent pool unlinks.  This is the crash half of the
        no-leak acceptance criterion.
        """
        service = ShardedForecastService(config=ShardConfig(workers=2))
        # Big enough blocks to actually cross the sharing threshold.
        pool = _pool(400, seed=3)
        service.bind_system("a", pool, "big")
        service.bind_system("b", pool, "big")
        service.ingest([("a", 0.1), ("b", 0.2)])
        assert service.pool.n_leased > 0
        assert live_segments() != []
        victim = service._shards[0].process
        victim.terminate()
        victim.join()
        health = service.healthz()
        assert health["status"] == "degraded"
        assert health["workers_alive"] == 1
        service.close()
        assert live_segments() == []

    def test_close_is_idempotent(self):
        service = ShardedForecastService(config=ShardConfig(workers=2))
        service.bind_system("a", _pool(5, seed=4), "m")
        service.close()
        service.close()
        assert live_segments() == []

    def test_dead_shard_raises_shard_error_on_ingest(self):
        from repro.service.sharding import ShardError

        service = ShardedForecastService(config=ShardConfig(workers=2))
        try:
            service.bind_system("a", _pool(5, seed=5), "m")
            service.ingest([("a", 0.5)])
            owner = service.shard_of("a")
            service._shards[owner].process.terminate()
            service._shards[owner].process.join()
            with pytest.raises(ShardError):
                service.ingest([("a", 0.5)])
        finally:
            service.close()
        assert live_segments() == []

    def test_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ShardConfig(workers=0)
        with pytest.raises(ValueError, match="max_pending_batches"):
            ShardConfig(max_pending_batches=0)
