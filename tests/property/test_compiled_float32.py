"""Property tests for ``CompiledRuleSystem(storage="float32")``.

The opt-in float32 pack trades the bitwise contract for half the
memory, with two documented guarantees (see ``CompiledRuleSystem``):

* **superset matching** — bounds are rounded *outward* (lo toward
  ``-inf``, hi toward ``+inf``), so every pair matched under float64
  is still matched under float32, including patterns sitting exactly
  on a float64 box boundary;
* **bounded value error** — coefficients round to nearest but the
  arithmetic stays float64, so a float32 compile is *bitwise* equal to
  a float64 compile of the cast-back pool, and each rule output is
  within ``(D+1)`` float32 ulps (~``(D+1) * 6e-8`` relative to the
  accumulated term magnitude) of the float64 value whenever the match
  sets agree.

Both halves are pinned here against the per-rule oracle, plus the
mechanical claims: the pack really halves, and ``export_blocks`` /
``from_blocks`` round-trips the storage mode.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import (
    CompiledRuleSystem,
    _round_bounds_down,
    _round_bounds_up,
)
from repro.core.predictor import RuleSystem
from repro.core.rule import Rule

from test_compiled_predictor import random_pool


def cast_back_pool(compiled32):
    """Rebuild the pool a float32 pack *actually* encodes, in float64.

    Bounds come from the outward-rounded arrays, coefficients from the
    nearest-rounded block — upcast back to float64.  A float64 compile
    of this pool must be bitwise identical to the float32 compile,
    because the kernels upcast float32 parameters into float64
    arithmetic (never the reverse).
    """
    lo = compiled32.lo.astype(np.float64)
    hi = compiled32.hi.astype(np.float64)
    coeffs = compiled32.coeffs.astype(np.float64)
    rules = []
    for i in range(compiled32.n_rules):
        rule = Rule.from_box(
            np.where(np.isfinite(lo[i]), lo[i], 0.0),
            np.where(np.isfinite(hi[i]), hi[i], 1.0),
            prediction=float(coeffs[i, -1]),
        )
        rule.wildcard = ~np.isfinite(lo[i]) & ~np.isfinite(hi[i])
        rule.error = 1.0
        if compiled32.is_linear[i]:
            rule.coeffs = coeffs[i].copy()
        rules.append(rule)
    return rules


def oracle_match_matrix(lo, hi, patterns):
    """(R, n) boolean match matrix straight from the bounds arrays."""
    lo64 = lo.astype(np.float64)
    hi64 = hi.astype(np.float64)
    inside = (patterns[None, :, :] >= lo64[:, None, :]) & (
        patterns[None, :, :] <= hi64[:, None, :]
    )
    return inside.all(axis=2)


class TestFloat32Rounding:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_outward_rounding_never_shrinks_a_box(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.normal(scale=10.0 ** rng.integers(-6, 6), size=n)
        x[rng.random(n) < 0.1] = np.inf
        x[rng.random(n) < 0.1] = -np.inf
        down = _round_bounds_down(x)
        up = _round_bounds_up(x)
        assert np.all(down.astype(np.float64) <= x)
        assert np.all(up.astype(np.float64) >= x)
        assert down.dtype == np.float32 and up.dtype == np.float32

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_rounding_is_tight(self, seed):
        """Outward rounding moves by at most one float32 ulp."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(-100, 100, size=50)
        down = _round_bounds_down(x).astype(np.float64)
        up = _round_bounds_up(x).astype(np.float64)
        nearest = x.astype(np.float32).astype(np.float64)
        ulp = np.abs(
            np.nextafter(x.astype(np.float32), np.float32(np.inf)).astype(
                np.float64
            )
            - nearest
        )
        assert np.all(x - down <= 2 * ulp)
        assert np.all(up - x <= 2 * ulp)


class TestFloat32Matching:
    @given(
        st.integers(1, 6),       # d
        st.integers(1, 30),      # rules
        st.integers(1, 120),     # patterns
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_match_superset(self, d, n_rules, n_patterns, seed):
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, n_rules, d)
        c64 = CompiledRuleSystem(rules)
        c32 = CompiledRuleSystem(rules, storage="float32")
        patterns = rng.uniform(-0.2, 1.2, size=(n_patterns, d))
        m64 = oracle_match_matrix(c64.lo, c64.hi, patterns)
        m32 = oracle_match_matrix(c32.lo, c32.hi, patterns)
        # Every float64 match survives the float32 pack.
        assert np.all(m32 >= m64)
        # And the kernel agrees with the widened-bounds oracle.
        p32 = c32.predict(patterns)
        assert np.array_equal(p32.n_rules_used, m32.sum(axis=0))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_boundary_patterns_stay_matched(self, seed):
        """Patterns exactly on float64 box edges cannot be dropped."""
        rng = np.random.default_rng(seed)
        d = int(rng.integers(1, 5))
        rules = random_pool(rng, 12, d, p_wildcard=0.1)
        c32 = CompiledRuleSystem(rules, storage="float32")
        c64 = CompiledRuleSystem(rules)
        edges = []
        for bounds in (c64.lo, c64.hi):
            for i in range(c64.n_rules):
                if np.isfinite(bounds[i]).all():
                    edges.append(bounds[i])
        if not edges:
            return
        patterns = np.asarray(edges)
        m64 = oracle_match_matrix(c64.lo, c64.hi, patterns)
        p32 = c32.predict(patterns)
        assert np.all(p32.n_rules_used >= m64.sum(axis=0))

    @given(
        st.integers(1, 6),
        st.integers(1, 30),
        st.integers(0, 150),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_float32_is_bitwise_the_cast_back_pool(
        self, d, n_rules, n_patterns, seed
    ):
        """The sharpest form of the contract: a float32 compile is not
        "approximately" anything — it is *exactly* a float64 compile of
        the rounded parameters, against the per-rule oracle too."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, n_rules, d)
        c32 = CompiledRuleSystem(rules, storage="float32")
        back = cast_back_pool(c32)
        patterns = rng.uniform(-0.2, 1.2, size=(n_patterns, d))
        got = c32.predict(patterns)
        ref = CompiledRuleSystem(back).predict(patterns)
        oracle = RuleSystem(back).predict(patterns, compiled=False)
        for want in (ref, oracle):
            assert np.array_equal(got.values, want.values, equal_nan=True)
            assert np.array_equal(got.predicted, want.predicted)
            assert np.array_equal(got.n_rules_used, want.n_rules_used)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_staged_and_legacy_agree_on_float32(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(1, 6))
        rules = random_pool(rng, 20, d)
        patterns = rng.uniform(-0.2, 1.2, size=(80, d))
        a = CompiledRuleSystem(rules, storage="float32").predict(patterns)
        b = CompiledRuleSystem(
            rules, storage="float32", matcher="legacy"
        ).predict(patterns)
        assert np.array_equal(a.values, b.values, equal_nan=True)
        assert np.array_equal(a.n_rules_used, b.n_rules_used)


class TestFloat32Values:
    @given(
        st.integers(1, 6),
        st.integers(1, 30),
        st.integers(1, 120),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_value_tolerance_where_match_sets_agree(
        self, d, n_rules, n_patterns, seed
    ):
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, n_rules, d)
        c64 = CompiledRuleSystem(rules)
        c32 = CompiledRuleSystem(rules, storage="float32")
        patterns = rng.uniform(-0.2, 1.2, size=(n_patterns, d))
        p64 = c64.predict(patterns)
        p32 = c32.predict(patterns)
        m64 = oracle_match_matrix(c64.lo, c64.hi, patterns)
        m32 = oracle_match_matrix(c32.lo, c32.hi, patterns)
        same = (m64 == m32).all(axis=0) & p64.predicted
        if not same.any():
            return
        # Per-pattern magnitude bound: the mean of per-rule term sums
        # |intercept| + sum |x_j a_j| over the matched rules.
        mags = np.abs(c64.coeffs[:, -1])[:, None] + np.abs(
            c64.coeffs[:, :d]
        ) @ np.abs(patterns.T)
        counts = m64.sum(axis=0)
        bound = np.where(
            counts > 0, (mags * m64).sum(axis=0) / np.maximum(counts, 1), 0.0
        )
        tol = (d + 1) * 6e-8 * np.maximum(bound, 1e-12) + 1e-300
        err = np.abs(p32.values - p64.values)
        assert np.all(err[same] <= tol[same])


class TestFloat32Pack:
    def test_memory_halves(self):
        rng = np.random.default_rng(3)
        rules = random_pool(rng, 32, 8)
        c64 = CompiledRuleSystem(rules)
        c32 = CompiledRuleSystem(rules, storage="float32")
        for name in ("lo", "hi", "coeffs", "_loT", "_hiT", "_weightsT",
                     "_intercept"):
            a64 = getattr(c64, name)
            a32 = getattr(c32, name)
            assert a32.nbytes * 2 == a64.nbytes, name

    def test_rejects_unknown_storage(self):
        rng = np.random.default_rng(4)
        rules = random_pool(rng, 3, 2)
        try:
            CompiledRuleSystem(rules, storage="float16")
        except ValueError:
            pass
        else:
            raise AssertionError("storage='float16' should be rejected")

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_export_roundtrip_preserves_storage(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(1, 6))
        rules = random_pool(rng, 12, d)
        c32 = CompiledRuleSystem(rules, storage="float32")
        clone = CompiledRuleSystem.from_blocks(c32.export_blocks())
        assert clone.storage == "float32"
        assert clone.lo.dtype == np.float32
        patterns = rng.uniform(0, 1, size=(40, d))
        a = c32.predict(patterns)
        b = clone.predict(patterns)
        assert np.array_equal(a.values, b.values, equal_nan=True)
        assert np.array_equal(a.n_rules_used, b.n_rules_used)
