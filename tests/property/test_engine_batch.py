"""Batched-offspring engine semantics (``EvolutionConfig.offspring_batch``).

Two guarantees, mirroring the knob's contract in
:class:`~repro.core.config.EvolutionConfig`:

* ``offspring_batch=1`` is not merely equivalent to the classic
  steady-state loop — it *is* the same code path, so whole runs stay
  bitwise-identical (same RNG stream, same rule set, same replacement
  count) to a run configured without the knob;
* ``offspring_batch=K`` is a deterministic, well-formed execution: the
  stacked matching pass feeds every offspring the same mask the lazy
  kernel would have produced, replacements within a batch are strictly
  sequential, and repeated runs with one seed agree bitwise.
"""

import numpy as np
import pytest

from repro.core.config import EvolutionConfig
from repro.core.engine import SteadyStateEngine, evolve
from repro.core.fitness import FitnessParams
from repro.core.matching import match_mask
from repro.series.noise import sine_series
from repro.series.windowing import WindowDataset

D = 6


@pytest.fixture(scope="module")
def dataset():
    series = sine_series(420, period=40, noise_sigma=0.03, seed=9)
    return WindowDataset.from_series(series, D, 1)


def _config(**kwargs) -> EvolutionConfig:
    base = dict(
        d=D,
        horizon=1,
        population_size=14,
        generations=160,
        fitness=FitnessParams(e_max=0.4),
        seed=71,
    )
    base.update(kwargs)
    return EvolutionConfig(**base)


def _rule_key(rules):
    return [r.encode() for r in rules]


class TestBatchOfOne:
    def test_k1_is_bitwise_identical_to_classic_run(self, dataset):
        classic = evolve(dataset, _config())
        batched = evolve(dataset, _config(offspring_batch=1))
        assert _rule_key(classic.rules) == _rule_key(batched.rules)
        assert classic.replacements == batched.replacements

    def test_k1_rng_stream_matches_step(self, dataset):
        """step_batch(1) must consume the RNG exactly like step()."""
        a = SteadyStateEngine(dataset, _config())
        b = SteadyStateEngine(dataset, _config())
        a.initialize()
        b.initialize()
        for gen in range(40):
            a.step(gen)
            b.step_batch(1)
        assert _rule_key(a.population) == _rule_key(b.population)
        assert a.replacements == b.replacements
        # The generators themselves must be in the same state.
        assert a.rng.integers(0, 2**31) == b.rng.integers(0, 2**31)


class TestBatchedExecution:
    @pytest.mark.parametrize("k", [2, 5, 8])
    def test_deterministic_given_seed(self, dataset, k):
        r1 = evolve(dataset, _config(offspring_batch=k))
        r2 = evolve(dataset, _config(offspring_batch=k))
        assert _rule_key(r1.rules) == _rule_key(r2.rules)
        assert r1.replacements == r2.replacements

    def test_stacked_masks_match_lazy_oracle(self, dataset):
        """Every rule leaving a batched run carries an exact mask."""
        result = evolve(dataset, _config(offspring_batch=4, generations=80))
        for rule in result.rules:
            assert np.array_equal(
                rule.match_mask, match_mask(rule, dataset.X)
            )
            assert rule.n_matched == int(rule.match_mask.sum())

    def test_generation_budget_counts_offspring(self, dataset):
        """K offspring per step still spend K generations of budget."""
        cfg = _config(offspring_batch=7, generations=40, stats_every=10)
        engine = SteadyStateEngine(dataset, cfg)
        result = engine.run()
        # 40 generations at stats_every=10 -> exactly 4 snapshots, the
        # last at generation 40 (mid-batch cadences settle at batch end).
        assert [s.generation for s in result.stats] == [10, 20, 30, 40]

    def test_incremental_and_full_recompute_agree(self, dataset):
        fast = evolve(dataset, _config(offspring_batch=5))
        slow = evolve(dataset, _config(offspring_batch=5, incremental=False))
        assert _rule_key(fast.rules) == _rule_key(slow.rules)
        assert fast.replacements == slow.replacements

    def test_replacements_are_sequential_within_batch(self, dataset):
        """A batch may accept several offspring; the engine must apply
        them one at a time (state rows change between acceptances)."""
        cfg = _config(offspring_batch=6, generations=0)
        engine = SteadyStateEngine(dataset, cfg)
        engine.initialize()
        before = _rule_key(engine.population)
        flags = engine.step_batch(6)
        assert len(flags) == 6
        changed = sum(
            1 for x, y in zip(before, _rule_key(engine.population)) if x != y
        )
        # Accepted offspring each occupy exactly one slot.
        assert changed <= sum(flags)
        assert engine.replacements == sum(flags)

    def test_rejects_nonpositive_k(self, dataset):
        engine = SteadyStateEngine(dataset, _config())
        engine.initialize()
        with pytest.raises(ValueError):
            engine.step_batch(0)

    def test_config_validates_offspring_batch(self):
        with pytest.raises(ValueError):
            _config(offspring_batch=0)
