"""Property-based tests (hypothesis) for the core rule machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.fitness import FitnessParams, fitness_array, rule_fitness
from repro.core.intervals import Interval, pack_intervals, unpack_intervals
from repro.core.matching import match_mask, match_mask_dense
from repro.core.operators import _edit_interval, mutate, uniform_crossover
from repro.core.config import MutationParams
from repro.core.rule import Rule

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw):
    if draw(st.booleans()) and draw(st.integers(0, 4)) == 0:
        return Interval.star()
    a = draw(finite)
    b = draw(finite)
    return Interval(min(a, b), max(a, b))


@st.composite
def rules(draw, d=None):
    if d is None:
        d = draw(st.integers(1, 8))
    return Rule.from_intervals([draw(intervals()) for _ in range(d)])


class TestIntervalProperties:
    @given(intervals())
    def test_encode_decode_roundtrip(self, iv):
        assert Interval.decode(*iv.encode()) == iv

    @given(intervals(), finite)
    def test_shift_preserves_width(self, iv, delta):
        shifted = iv.shifted(delta)
        if iv.wildcard:
            assert shifted.wildcard
        else:
            assert shifted.width == iv.width or abs(
                shifted.width - iv.width
            ) < 1e-6 * max(1.0, abs(iv.width))

    @given(intervals(), finite)
    def test_containment_consistent_with_bounds(self, iv, x):
        if iv.contains(x) and not iv.wildcard:
            assert iv.lower <= x <= iv.upper

    @given(st.lists(intervals(), min_size=1, max_size=10))
    def test_pack_unpack_roundtrip(self, ivs):
        assert list(unpack_intervals(*pack_intervals(ivs))) == ivs

    @given(intervals(), intervals())
    def test_union_contains_both(self, a, b):
        u = a.union_bounds(b)
        for iv in (a, b):
            if not iv.wildcard and not u.wildcard:
                assert u.lower <= iv.lower and u.upper >= iv.upper


class TestMatchingProperties:
    @given(rules(), st.integers(0, 300), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_lazy_equals_dense_equals_scalar(self, rule, n, seed):
        rng = np.random.default_rng(seed)
        windows = rng.uniform(-1e6, 1e6, size=(n, rule.n_lags))
        lazy = match_mask(rule, windows)
        dense = match_mask_dense(rule, windows)
        assert np.array_equal(lazy, dense)
        for i in range(0, n, max(1, n // 7)):
            assert lazy[i] == rule.matches(windows[i])

    @given(rules(), st.integers(1, 100), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_widening_only_adds_matches(self, rule, n, seed):
        rng = np.random.default_rng(seed)
        windows = rng.uniform(-1e6, 1e6, size=(n, rule.n_lags))
        before = match_mask(rule, windows)
        wide = rule.copy()
        concrete = ~wide.wildcard
        wide.lower[concrete] -= 1.0
        wide.upper[concrete] += 1.0
        after = match_mask(wide, windows)
        assert np.all(after | ~before)  # before ⊆ after


class TestFitnessProperties:
    @given(
        st.integers(0, 10_000),
        st.floats(0, 1e6, allow_nan=False),
        st.floats(1e-3, 1e3),
    )
    def test_valid_fitness_exceeds_fmin(self, n, e, e_max):
        p = FitnessParams(e_max=e_max, f_min=-1.0)
        f = rule_fitness(n, e, p)
        if n > p.min_matches and e < e_max:
            assert f > p.f_min
        else:
            assert f == p.f_min

    @given(
        st.integers(2, 1000),
        st.floats(0, 0.9),
        st.floats(1e-2, 1e2),
    )
    def test_monotone_in_matches(self, n, e_frac, e_max):
        p = FitnessParams(e_max=e_max)
        e = e_frac * e_max
        assert rule_fitness(n + 1, e, p) > rule_fitness(n, e, p)

    @given(
        st.integers(2, 1000),
        st.floats(0, 0.5),
        st.floats(1e-2, 1e2),
    )
    def test_antitone_in_error(self, n, e_frac, e_max):
        p = FitnessParams(e_max=e_max)
        e_small = e_frac * e_max
        e_big = (e_frac + 0.4) * e_max
        assert rule_fitness(n, e_small, p) > rule_fitness(n, e_big, p)

    @given(
        hnp.arrays(np.int64, st.integers(0, 30), elements=st.integers(0, 100)),
        st.floats(1e-2, 1e2),
        st.integers(0, 2**31 - 1),
    )
    def test_array_matches_scalar(self, n_arr, e_max, seed):
        rng = np.random.default_rng(seed)
        errors = rng.uniform(0, 2 * e_max, size=n_arr.shape)
        p = FitnessParams(e_max=e_max)
        got = fitness_array(n_arr, errors, p)
        want = [rule_fitness(int(n), float(e), p) for n, e in zip(n_arr, errors)]
        assert np.allclose(got, want)


class TestOperatorProperties:
    @given(rules(d=5), rules(d=5), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_crossover_gene_provenance(self, a, b, seed):
        rng = np.random.default_rng(seed)
        child = uniform_crossover(a, b, rng)
        for i in range(5):
            gene = (child.lower[i], child.upper[i], child.wildcard[i])
            gene_a = (a.lower[i], a.upper[i], a.wildcard[i])
            gene_b = (b.lower[i], b.upper[i], b.wildcard[i])
            assert gene == gene_a or gene == gene_b

    @given(rules(), st.integers(0, 2**31 - 1), st.floats(0.01, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_mutation_preserves_order_invariant(self, rule, seed, rate):
        rng = np.random.default_rng(seed)
        params = MutationParams(rate=rate, scale=0.3)
        mutate(rule, params, (-10.0, 10.0), rng)
        ok = rule.wildcard | (rule.lower <= rule.upper)
        assert ok.all()

    @given(
        st.floats(-100, 100),
        st.floats(0, 50),
        st.sampled_from(["enlarge", "shrink", "shift_up", "shift_down"]),
        st.floats(0, 25),
    )
    def test_edit_interval_never_inverts(self, lo, width, op, step):
        new_lo, new_hi = _edit_interval(lo, lo + width, op, step)
        assert new_lo <= new_hi + 1e-12
