"""Property tests: micro-batched multi-stream serving vs per-stream loops.

The acceptance bar of the serving gateway
(:class:`repro.service.ForecastService`): for *any* pool, any set of
streams, any interleaving of their events and any micro-batch
partitioning, every stream receives **bitwise** the forecasts a private
:class:`~repro.serve.StreamingForecaster` would have produced one event
at a time — which in turn is held bitwise to the per-rule loop oracle.
Micro-batching must be invisible in the output bits.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import CompiledRuleSystem
from repro.core.predictor import RuleSystem
from repro.core.rule import Rule
from repro.serve import StreamingForecaster
from repro.service import ForecastService


def random_pool(rng, n_rules, d, p_wildcard=0.3, p_linear=0.5, width=0.3):
    """A plausible evolved pool (same recipe as the compiled-path suite)."""
    rules = []
    for _ in range(n_rules):
        lo = rng.uniform(0, 1 - width, size=d)
        hi = lo + rng.uniform(0.05, width, size=d)
        rule = Rule.from_box(lo, hi, prediction=float(rng.normal()))
        rule.wildcard = rng.random(d) < p_wildcard
        rule.error = float(rng.uniform(0.01, 1.0))
        if rng.random() < p_linear:
            rule.coeffs = np.concatenate(
                [rng.normal(scale=0.5, size=d), [float(rng.normal())]]
            )
        rules.append(rule)
    return rules


def interleaved_events(rng, streams):
    """A random arrival order mixing all streams' values, per-stream FIFO."""
    remaining = {name: list(vals) for name, vals in streams.items()}
    order = [
        name
        for name, vals in streams.items()
        for _ in range(len(vals))
    ]
    rng.shuffle(order)
    return [(name, remaining[name].pop(0)) for name in order]


def partitions(rng, events, max_batch):
    """Split the event list into random micro-batches, order preserved."""
    batches = []
    i = 0
    while i < len(events):
        size = int(rng.integers(1, max_batch + 1))
        batches.append(events[i : i + size])
        i += size
    return batches


class TestMicroBatchingBitwise:
    @given(
        st.integers(1, 6),        # d
        st.integers(1, 25),       # rules
        st.integers(1, 6),        # streams
        st.integers(0, 40),       # events per stream
        st.integers(1, 17),       # max micro-batch size
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_gateway_equals_per_stream_forecasters(
        self, d, n_rules, n_streams, per_stream, max_batch, seed
    ):
        """Any pool / interleaving / batch split: bitwise per stream."""
        rng = np.random.default_rng(seed)
        pool = RuleSystem(random_pool(rng, n_rules, d))
        streams = {
            f"s{k}": rng.uniform(-0.2, 1.2, size=per_stream)
            for k in range(n_streams)
        }
        events = interleaved_events(rng, streams)

        service = ForecastService()
        for name in streams:
            service.bind_system(name, pool, model="shared")
        outputs = {name: [] for name in streams}
        for batch in partitions(rng, events, max_batch):
            for forecast in service.ingest(batch):
                outputs[forecast.stream].append(forecast)

        for name, values in streams.items():
            forecaster = StreamingForecaster(pool)
            steps = forecaster.extend(values)
            assert len(outputs[name]) == len(steps)
            for forecast, step in zip(outputs[name], steps):
                assert forecast.t == step.t
                assert forecast.ready == step.ready
                assert forecast.predicted == step.predicted
                assert forecast.n_rules_used == step.n_rules_used
                assert np.array_equal(
                    [forecast.value], [step.value], equal_nan=True
                )
            # Coverage bookkeeping agrees with the reference stream.
            stats = service.stream_stats(name)
            assert stats["ready_steps"] == forecaster.n_steps
            assert stats["predicted_steps"] == forecaster.n_predicted
            assert stats["coverage"] == forecaster.coverage

    @given(
        st.integers(1, 5),        # d
        st.integers(1, 20),       # rules
        st.integers(0, 120),      # windows
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_predict_windows_equals_loop_oracle(
        self, d, n_rules, n_windows, seed
    ):
        """The batch-of-windows entry point vs the per-rule loop."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, n_rules, d)
        system = RuleSystem(rules)
        compiled = CompiledRuleSystem(rules)
        windows = rng.uniform(-0.2, 1.2, size=(n_windows, d))
        oracle = system.predict(windows, compiled=False)
        fast = compiled.predict_windows(windows)
        assert np.array_equal(oracle.values, fast.values, equal_nan=True)
        assert np.array_equal(oracle.predicted, fast.predicted)
        assert np.array_equal(oracle.n_rules_used, fast.n_rules_used)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_same_stream_repeated_in_one_batch(self, seed):
        """Multiple events for one stream in a single micro-batch form
        consecutive windows, exactly as consecutive update() calls."""
        rng = np.random.default_rng(seed)
        pool = RuleSystem(random_pool(rng, 12, 3))
        values = rng.uniform(0, 1, size=20)

        service = ForecastService()
        service.bind_system("only", pool)
        outputs = service.ingest([("only", v) for v in values])

        steps = StreamingForecaster(pool).extend(values)
        for forecast, step in zip(outputs, steps):
            assert forecast.t == step.t
            assert np.array_equal(
                [forecast.value], [step.value], equal_nan=True
            )
            assert forecast.n_rules_used == step.n_rules_used

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_mixed_models_score_independently(self, seed):
        """Streams on different models never contaminate each other."""
        rng = np.random.default_rng(seed)
        pool_a = RuleSystem(random_pool(rng, 10, 4))
        pool_b = RuleSystem(random_pool(rng, 15, 4))
        series = {name: rng.uniform(0, 1, size=15) for name in "abc"}

        service = ForecastService()
        service.bind_system("a", pool_a, model="A")
        service.bind_system("b", pool_b, model="B")
        service.bind_system("c", pool_a, model="A")   # shares A's batch
        outputs = {name: [] for name in "abc"}
        for i in range(15):
            for forecast in service.ingest(
                [(name, series[name][i]) for name in "abc"]
            ):
                outputs[forecast.stream].append(forecast)

        for name, pool in (("a", pool_a), ("b", pool_b), ("c", pool_a)):
            steps = StreamingForecaster(pool).extend(series[name])
            for forecast, step in zip(outputs[name], steps):
                assert np.array_equal(
                    [forecast.value], [step.value], equal_nan=True
                )


class TestFusedStacking:
    """The ``fused_stacking`` A/B hatch: layout changes, bits do not."""

    @given(
        st.integers(1, 6),        # d
        st.integers(1, 25),       # rules
        st.integers(1, 6),        # streams
        st.integers(0, 40),       # events per stream
        st.integers(1, 17),       # max micro-batch size
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_fused_equals_baseline_gateway(
        self, d, n_rules, n_streams, per_stream, max_batch, seed
    ):
        """Any pool / interleaving / batch split: both layouts bitwise."""
        rng = np.random.default_rng(seed)
        pool = RuleSystem(random_pool(rng, n_rules, d))
        streams = {
            f"s{k}": rng.uniform(-0.2, 1.2, size=per_stream)
            for k in range(n_streams)
        }
        events = interleaved_events(rng, streams)
        batches = partitions(rng, events, max_batch)

        def replay(fused):
            service = ForecastService(fused_stacking=fused)
            for name in streams:
                service.bind_system(name, pool, model="shared")
            out = []
            for batch in batches:
                out.extend(service.ingest(batch))
            return out

        for a, b in zip(replay(True), replay(False)):
            assert a.stream == b.stream and a.t == b.t
            assert a.ready == b.ready and a.predicted == b.predicted
            assert a.n_rules_used == b.n_rules_used
            assert a.model == b.model and a.version == b.version
            assert np.array_equal([a.value], [b.value], equal_nan=True)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_fused_rich_path_with_policy(self, seed):
        """The rich (policy) scoring branch holds bitwise too —
        uncertainty fields included."""
        from repro.service.policy import PolicyEngine, PolicySpec

        rng = np.random.default_rng(seed)
        pool = RuleSystem(random_pool(rng, 15, 4))
        series = {name: rng.uniform(-0.2, 1.2, size=25) for name in "xyz"}
        spec = PolicySpec(alert_above=0.5, hysteresis=0.1, min_matches=1)

        def replay(fused):
            service = ForecastService(fused_stacking=fused)
            for name in series:
                service.bind_system(name, pool, model="shared")
            service.attach_policy(PolicyEngine(spec))
            out = []
            for i in range(25):
                out.extend(service.ingest(
                    [(name, series[name][i]) for name in "xyz"]
                ))
            return out

        for a, b in zip(replay(True), replay(False)):
            assert a.stream == b.stream and a.t == b.t
            assert a.n_rules_used == b.n_rules_used
            for fa, fb in (
                (a.value, b.value), (a.confidence, b.confidence),
                (a.dispersion, b.dispersion),
                (a.interval_lo, b.interval_lo),
                (a.interval_hi, b.interval_hi),
            ):
                assert np.array_equal([fa], [fb], equal_nan=True)
            assert type(a.decision) is type(b.decision)

    @given(
        st.integers(1, 5),        # d
        st.integers(1, 20),       # rules
        st.integers(0, 120),      # windows
        st.integers(0, 8),        # extra unused buffer columns
        st.booleans(),            # rich
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_predict_windowsT_equals_predict_windows(
        self, d, n_rules, n_windows, slack, rich, seed
    ):
        """The transposed entry vs the row-major entry, bitwise, with
        trailing garbage columns proving only ``k`` columns are read."""
        rng = np.random.default_rng(seed)
        compiled = CompiledRuleSystem(random_pool(rng, n_rules, d))
        windows = rng.uniform(-0.2, 1.2, size=(n_windows, d))
        stackT = np.full((d, n_windows + slack), np.nan)
        stackT[:, :n_windows] = windows.T
        row = compiled.predict_windows(windows, rich=rich)
        col = compiled.predict_windowsT(stackT, n_windows, rich=rich)
        assert np.array_equal(row.values, col.values, equal_nan=True)
        assert np.array_equal(row.predicted, col.predicted)
        assert np.array_equal(row.n_rules_used, col.n_rules_used)
        if rich:
            for field in (
                "confidence", "dispersion", "interval_lo", "interval_hi"
            ):
                assert np.array_equal(
                    getattr(row, field), getattr(col, field), equal_nan=True
                )

    def test_predict_windowsT_validates(self):
        rng = np.random.default_rng(0)
        compiled = CompiledRuleSystem(random_pool(rng, 5, 3))
        import pytest

        with pytest.raises(ValueError):
            compiled.predict_windowsT(np.zeros((4, 7)))       # wrong D
        with pytest.raises(ValueError):
            compiled.predict_windowsT(np.zeros((3, 7)), k=8)  # k > cap
        with pytest.raises(ValueError):
            compiled.predict_windowsT(np.zeros((3, 7)), k=-1)

    def test_adaptation_pins_baseline_layout(self):
        """With an adaptation hook attached the stacks passed to
        ``on_batch`` stay row-major ``(k, d)`` slices."""
        rng = np.random.default_rng(3)
        pool = RuleSystem(random_pool(rng, 8, 3))
        seen = []

        class Probe:
            def on_batch(self, batch, results, ready, stacks):
                for key, members in ready.items():
                    seen.append(stacks[key][: len(members)].shape)

            def stats(self):
                return {}

        service = ForecastService(fused_stacking=True)
        service.bind_system("s", pool, model="m")
        service.attach_adaptation(Probe())
        for v in rng.uniform(0, 1, size=10):
            service.ingest([("s", float(v))])
        assert seen and all(shape[1] == 3 for shape in seen)
