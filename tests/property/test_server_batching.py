"""Property tests: the network front-end vs a serial gateway replay.

The acceptance bar of :class:`repro.service.ForecastServer`: for *any*
pool, any assignment of streams to connections, any interleaving of
events within a connection and any batcher settings, every stream
receives **bitwise** the forecasts a serial
:meth:`~repro.service.ForecastService.ingest_one` replay would have
produced.  The adaptive batcher partitions the global arrival order
into micro-batches, but per-stream FIFO is preserved end to end
(connection read order -> single bounded queue -> single consumer), so
the gateway's partition-independence guarantee lifts to the wire.

Each example starts a real asyncio server on a loopback port, so the
example counts stay modest; the schedules inside each example are
hypothesis-driven.
"""

import asyncio
import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictor import RuleSystem
from repro.service import ForecastServer, ForecastService, ServerConfig
from repro.service.server import forecast_to_dict

from test_service_batching import interleaved_events, random_pool


def _build(rng, d, n_rules, n_streams, per_stream):
    """A pool plus named streams of random values."""
    pool = RuleSystem(random_pool(rng, n_rules, d))
    streams = {
        f"s{k}": [float(v) for v in rng.uniform(-0.2, 1.2, size=per_stream)]
        for k in range(n_streams)
    }
    return pool, streams


def _bound_service(pool, streams):
    service = ForecastService()
    for name in streams:
        service.bind_system(name, pool, model="prop")
    return service


def _wire_line(rng, name, value):
    """Either wire form, at random — both must be equivalent."""
    if rng.random() < 0.5:
        return f"{name},{value!r}\n"
    return json.dumps({"stream": name, "value": value}) + "\n"


def _serial_oracle(pool, streams, conn_events):
    """Replay every connection's events through a fresh gateway, one
    event at a time, and collect the wire dicts per stream."""
    oracle = _bound_service(pool, streams)
    expected = {name: [] for name in streams}
    for events in conn_events:
        for name, value in events:
            expected[name].append(
                forecast_to_dict(oracle.ingest_one(name, value))
            )
    return expected


async def _drive(pool, streams, conn_events, config, rng):
    """Run one schedule against a live server; responses per stream."""
    service = _bound_service(pool, streams)

    async def one_connection(host, port, events):
        reader, writer = await asyncio.open_connection(host, port)
        if rng.random() < 0.3:  # noise the framing: ignored lines
            writer.write(b"# comment\n\n")
        for name, value in events:
            writer.write(_wire_line(rng, name, value).encode())
        await writer.drain()
        out = [json.loads(await reader.readline()) for _ in events]
        writer.close()
        await writer.wait_closed()
        return out

    async with ForecastServer(service, config) as server:
        host, port = server.address
        replies = await asyncio.gather(*(
            one_connection(host, port, events) for events in conn_events
        ))
    got = {name: [] for name in streams}
    for events, out in zip(conn_events, replies):
        for (name, _), reply in zip(events, out):
            got[name].append(reply)
    return got, service


class TestNetworkBitwise:
    @given(
        st.integers(1, 5),         # d
        st.integers(1, 20),        # rules
        st.integers(1, 6),         # streams
        st.integers(0, 25),        # events per stream
        st.integers(1, 4),         # connections
        st.integers(1, 32),        # max_batch
        st.floats(0.001, 0.02),    # max batching window (s)
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=12, deadline=None)
    def test_server_equals_serial_ingest_one_replay(
        self, d, n_rules, n_streams, per_stream, n_conns,
        max_batch, window_s, seed,
    ):
        """Any pool / stream-to-connection map / batcher tuning:
        per-stream wire responses are bitwise the serial replay."""
        rng = np.random.default_rng(seed)
        pool, streams = _build(rng, d, n_rules, n_streams, per_stream)

        # Each stream lives on exactly one connection (per-stream order
        # is only defined within a connection); a connection may carry
        # several interleaved streams.
        assignment = {
            name: int(rng.integers(0, n_conns)) for name in streams
        }
        conn_events = []
        for c in range(n_conns):
            mine = {n: v for n, v in streams.items() if assignment[n] == c}
            conn_events.append(interleaved_events(rng, mine) if mine else [])

        total = sum(len(e) for e in conn_events)
        config = ServerConfig(
            max_batch=max_batch,
            max_window_s=float(window_s),
            min_window_s=min(0.0005, float(window_s)),
            queue_size=total + 8,            # clients blast: no overload
            max_pending_per_conn=total + 8,  # in this suite, by design
        )
        got, service = asyncio.run(
            _drive(pool, streams, conn_events, config, rng)
        )
        expected = _serial_oracle(pool, streams, conn_events)

        for name in streams:
            assert got[name] == expected[name]
        # Nothing lost, nothing duplicated, nothing invented.
        assert service.stats()["events"] == total

    @given(
        st.integers(1, 4),         # d
        st.integers(1, 15),        # rules
        st.integers(1, 4),         # streams
        st.integers(1, 12),        # events per stream
        st.integers(1, 8),         # HTTP batch size
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_http_ingest_equals_serial_replay(
        self, d, n_rules, n_streams, per_stream, http_batch, seed
    ):
        """POST /ingest batches are the same bits as the serial replay."""
        rng = np.random.default_rng(seed)
        pool, streams = _build(rng, d, n_rules, n_streams, per_stream)
        events = interleaved_events(rng, streams)
        batches = [
            events[i : i + http_batch]
            for i in range(0, len(events), http_batch)
        ]

        async def drive():
            service = _bound_service(pool, streams)
            results = []
            async with ForecastServer(service, ServerConfig()) as server:
                host, port = server.address
                for batch in batches:
                    body = json.dumps({"events": [
                        {"stream": n, "value": v} if rng.random() < 0.5
                        else [n, v]
                        for n, v in batch
                    ]}).encode()
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                    writer.write(
                        b"POST /ingest HTTP/1.1\r\nHost: t\r\n"
                        b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                    head, _, payload = raw.decode().partition("\r\n\r\n")
                    assert head.split("\r\n")[0] == "HTTP/1.1 200 OK"
                    results.extend(json.loads(payload)["results"])
            return results

        results = asyncio.run(drive())
        expected = _serial_oracle(pool, streams, [events])
        got = {name: [] for name in streams}
        for reply in results:
            got[reply["stream"]].append(reply)
        for name in streams:
            assert got[name] == expected[name]


class TestShardedNetworkBitwise:
    """The wire contract survives sharding: server over worker shards."""

    def test_server_over_sharded_service_is_bitwise(self):
        """--listen + --workers path: TCP responses, /metrics, /healthz.

        One deterministic schedule (process spawn is the expensive
        part, the ring/parity property suites cover the combinatorics)
        driven through a ForecastServer whose backing service is a
        2-worker ShardedForecastService; every response must match the
        serial single-process oracle bit for bit, and shutdown must
        leave /dev/shm empty.
        """
        from repro.parallel.shm import live_segments
        from repro.service.sharding import (
            ShardConfig,
            ShardedForecastService,
        )

        rng = np.random.default_rng(123)
        pool, streams = _build(rng, 4, 12, 5, 20)
        events = interleaved_events(rng, streams)

        async def drive():
            sharded = ShardedForecastService(
                config=ShardConfig(workers=2)
            )
            for name in streams:
                sharded.bind_system(name, pool, model="prop")
            config = ServerConfig(
                queue_size=len(events) + 8,
                max_pending_per_conn=len(events) + 8,
                metrics_top_k=3,
            )
            try:
                async with ForecastServer(sharded, config) as server:
                    host, port = server.address
                    reader, writer = await asyncio.open_connection(
                        host, port
                    )
                    for name, value in events:
                        writer.write(_wire_line(rng, name, value).encode())
                    await writer.drain()
                    out = [
                        json.loads(await reader.readline()) for _ in events
                    ]
                    writer.close()
                    await writer.wait_closed()
                    metrics = server.render_metrics()
                    health = server.healthz()
                return out, metrics, health
            finally:
                sharded.close()

        out, metrics, health = asyncio.run(drive())

        oracle = _serial_oracle(pool, streams, [events])
        got = {name: [] for name in streams}
        for (name, _), reply in zip(events, out):
            got[name].append(reply)
        for name in streams:
            assert got[name] == oracle[name]

        # Aggregated observability: shard-merged stats behind the same
        # endpoints, per-stream series capped at top-K + "other".
        assert health["workers"] == 2 and health["status"] == "ok"
        assert len(health["per_shard"]) == 2
        assert json.dumps(health)  # JSON-serializable end to end
        cov = [ln for ln in metrics.splitlines()
               if ln.startswith("repro_gateway_stream_coverage{")]
        assert len(cov) == 4  # top-3 + the "other" aggregate
        assert any('stream="other"' in ln for ln in cov)
        assert live_segments() == []
