"""SharedMemoryBackend == ProcessPool == Serial, bitwise — plus cleanup.

The shared-memory backend changes *transport only*: every consumer
(multirun pooling, island evolution, orchestrator sweeps, pool-scoring
fan-outs) must produce bit-identical results on all three backends,
and no ``/dev/shm`` segment may outlive ``close()`` — including after
worker exceptions, hard worker exits and parent pools dropped without
closing.
"""

import gc
import os

import numpy as np
import pytest

from repro.analysis.orchestrator import (
    ExperimentOrchestrator,
    PoolScoringTask,
    score_pool_grid,
)
from repro.core.config import EvolutionConfig, FitnessParams
from repro.core.multirun import multirun
from repro.core.rule import Rule
from repro.core.predictor import RuleSystem
from repro.parallel import (
    IslandModel,
    ProcessPoolBackend,
    SerialBackend,
    SharedMemoryBackend,
    ring_topology,
)
from repro.parallel.shm import (
    MIN_SHARED_BYTES,
    SharedArrayPool,
    attach_array,
    live_segments,
    shm_loads,
)
from repro.series.noise import sine_series
from repro.series.windowing import WindowDataset

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

WORKERS = 2


@pytest.fixture
def dataset():
    """Large enough that its series crosses the sharing threshold."""
    series = sine_series(2_200, period=80, noise_sigma=0.05, seed=3)
    assert series.nbytes >= MIN_SHARED_BYTES
    return WindowDataset.from_series(series, 6, 1)


@pytest.fixture
def config(dataset):
    return EvolutionConfig(
        d=dataset.d,
        horizon=dataset.horizon,
        population_size=10,
        generations=120,
        fitness=FitnessParams(e_max=0.4),
        seed=11,
    )


def _backends():
    return [
        ("serial", SerialBackend()),
        ("process", ProcessPoolBackend(workers=WORKERS)),
        ("shm", SharedMemoryBackend(workers=WORKERS)),
    ]


def _rules_key(system):
    return [r.encode() for r in system.rules]


def assert_no_segments():
    assert live_segments() == [], "leaked /dev/shm segments"


class TestMultirunEquivalence:
    def test_all_backends_bitwise(self, dataset, config):
        results = {}
        for name, backend in _backends():
            with backend:
                results[name] = multirun(
                    dataset, config, coverage_target=2.0,
                    max_executions=3, batch_size=3,
                    backend=backend, root_seed=99,
                )
        base = results["serial"]
        for name in ("process", "shm"):
            other = results[name]
            assert _rules_key(other.system) == _rules_key(base.system), name
            assert other.coverage_history == base.coverage_history, name
        assert_no_segments()


class TestIslandEquivalence:
    def test_all_backends_bitwise(self, dataset, config):
        cfg = config.replace(generations=240)
        results = {}
        for name, backend in [("inprocess", None), *_backends()]:
            model = IslandModel(
                dataset, cfg, ring_topology(3),
                migration_interval=80, root_seed=17, backend=backend,
            )
            results[name] = model.run()
            if backend is not None:
                backend.close()
        base = results["inprocess"]
        for name in ("serial", "process", "shm"):
            other = results[name]
            assert _rules_key(other.system) == _rules_key(base.system), name
            assert other.migrations_sent == base.migrations_sent, name
            assert other.migrations_accepted == base.migrations_accepted, name
            assert other.history == base.history, name
        assert_no_segments()


class TestOrchestratorEquivalence:
    def test_sweep_bitwise(self):
        payloads = {}
        for name, backend in _backends():
            with backend:
                orchestrator = ExperimentOrchestrator(backend=backend)
                run = orchestrator.run(["smoke"], scale="bench", seed=5)
            assert run.complete
            payloads[name] = run.payloads("smoke")
        assert payloads["process"] == payloads["serial"]
        assert payloads["shm"] == payloads["serial"]
        assert_no_segments()


class TestPoolScoringEquivalence:
    def _tasks(self):
        rng = np.random.default_rng(0)
        series = sine_series(3_000, period=120, noise_sigma=0.05, seed=9)
        ds = WindowDataset.from_series(series, 8, 1)
        X = np.ascontiguousarray(ds.X)
        rules = []
        for _ in range(24):
            center = X[int(rng.integers(0, X.shape[0]))]
            rule = Rule.from_box(center - 0.2, center + 0.2,
                                 prediction=float(rng.normal()))
            rule.error = 1.0
            rules.append(rule)
        compiled = RuleSystem(rules).compile()
        return [
            PoolScoringTask(compiled=compiled, X=X, y=ds.y,
                            metric="nmse", horizon=1, label=f"slice{i}")
            for i in range(6)
        ]

    def test_all_backends_bitwise(self):
        tasks = self._tasks()
        scored = {}
        for name, backend in _backends():
            with backend:
                scored[name] = score_pool_grid(tasks, backend)
        assert scored["process"] == scored["serial"]
        assert scored["shm"] == scored["serial"]
        assert_no_segments()


class TestSharedArrayPool:
    def test_dedup_by_value(self):
        with SharedArrayPool() as pool:
            a = np.arange(4096, dtype=np.float64)
            b = np.arange(4096, dtype=np.float64)  # equal value, new object
            ra = pool.place(a)
            rb = pool.place(b)
            assert ra == rb
            assert pool.n_segments == 1
        assert_no_segments()

    def test_roundtrip_bitwise_readonly(self):
        with SharedArrayPool() as pool:
            arr = np.random.default_rng(1).random(5_000)
            blob = pool.dumps({"x": arr, "small": np.arange(3)})
            out = shm_loads(blob)
            assert np.array_equal(out["x"], arr)
            assert not out["x"].flags.writeable
            assert out["small"].flags.writeable  # plain pickle path
        assert_no_segments()

    def test_small_arrays_not_shared(self):
        with SharedArrayPool() as pool:
            pool.dumps(np.arange(10, dtype=np.float64))
            assert pool.n_segments == 0

    def test_generation_eviction_retires_stale_segments(self):
        """Arrays that stop appearing in maps are unlinked; arrays that
        repeat every map (the shared series/matrix case) survive."""
        rng = np.random.default_rng(6)
        reused = rng.random(4_096)
        stale = rng.random(4_096)
        with SharedArrayPool() as pool:
            pool.place(reused)
            pool.place(stale)
            assert pool.n_segments == 2
            pool.end_generation()          # map 1 ends
            pool.place(reused)             # map 2 only ships `reused`
            evicted = pool.end_generation()
            assert evicted == 1            # `stale` out after its grace map
            assert pool.n_segments == 1
            for _ in range(3):             # `reused` survives indefinitely
                pool.place(reused)
                assert pool.end_generation() == 0
            assert pool.n_segments == 1
            ref_again = pool.place(stale)  # evicted value re-places cleanly
            assert ref_again.segment in pool.segment_names()
        assert_no_segments()

    def test_finalizer_backstop(self):
        pool = SharedArrayPool()
        pool.place(np.random.default_rng(2).random(4_096))
        assert len(live_segments()) == 1
        del pool
        gc.collect()
        assert_no_segments()


class TestCrashCleanup:
    def test_worker_exception_then_close_leaves_nothing(self):
        backend = SharedMemoryBackend(workers=WORKERS)
        big = np.random.default_rng(3).random(10_000)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                backend.map(_explode, [(big, i) for i in range(4)])
            assert backend.arrays.n_segments >= 1  # placed before the crash
        finally:
            backend.close()
        assert_no_segments()

    def test_hard_worker_exit_does_not_destroy_segment(self):
        """A dying attacher must not unlink the parent's segment.

        This is the resource-tracker discipline: the child attaches,
        then hard-exits; the parent's segment must stay mapped and
        readable afterwards (no premature unlink), and the parent's
        close() must still reclaim it.
        """
        import multiprocessing as mp

        pool = SharedArrayPool()
        try:
            arr = np.random.default_rng(4).random(5_000)
            ref = pool.place(arr)
            ctx = mp.get_context("spawn")
            proc = ctx.Process(target=_attach_and_die, args=(ref,))
            proc.start()
            proc.join(60)
            assert proc.exitcode == 7
            again = attach_array(ref)  # parent view still valid
            assert np.array_equal(again, arr)
        finally:
            pool.close()
        assert_no_segments()

    def test_close_idempotent(self):
        backend = SharedMemoryBackend(workers=WORKERS)
        backend.arrays.place(np.random.default_rng(5).random(4_096))
        backend.close()
        backend.close()
        assert_no_segments()


def _explode(arg):
    """Worker body that fails after receiving a shared payload."""
    raise RuntimeError("boom")


def _attach_and_die(ref):
    """Attach a segment, verify it, then hard-exit without cleanup."""
    view = attach_array(ref)
    assert view.shape == tuple(ref.shape)
    os._exit(7)
