"""Property-based tests for the incremental evaluation subsystem.

Oracle discipline: the per-rule kernels (:func:`match_mask_dense`,
:func:`evaluate_population`'s effects on each rule) define the ground
truth.  The batched stacked kernel and the incrementally maintained
:class:`PopulationState` must agree with from-scratch recomputation
after *arbitrary* replacement sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EvolutionConfig
from repro.core.evaluation import evaluate_rule
from repro.core.fitness import FitnessParams
from repro.core.matching import (
    match_mask,
    match_mask_dense,
    population_match_matrix_stacked,
)
from repro.core.population_state import PopulationState, as_mask_matrix
from repro.core.rule import Rule
from repro.series.noise import sine_series
from repro.series.windowing import WindowDataset

D = 4

_SERIES = sine_series(300, period=30, noise_sigma=0.05, seed=11)
_DATASET = WindowDataset.from_series(_SERIES, D, 1)
_CONFIG = EvolutionConfig(
    d=D, horizon=1, population_size=8, generations=0,
    fitness=FitnessParams(e_max=0.5),
)


def _random_rule(rng: np.random.Generator) -> Rule:
    """An evaluated rule boxed around a random training window."""
    center = _DATASET.X[int(rng.integers(0, len(_DATASET)))]
    width = float(rng.uniform(0.05, 1.5))
    rule = Rule.from_box(center - width, center + width)
    rule.wildcard = rng.random(D) < 0.25
    return evaluate_rule(rule, _DATASET, _CONFIG)


def _oracle_state(rules) -> PopulationState:
    """Full recomputation through the per-rule dense oracle."""
    masks = np.stack([match_mask_dense(r, _DATASET.X) for r in rules])
    fitness = np.array([r.fitness for r in rules])
    return PopulationState(masks, fitness)


class TestStackedKernel:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_stacked_equals_per_rule_oracle(self, seed, n_rules):
        rng = np.random.default_rng(seed)
        rules = [_random_rule(rng) for _ in range(n_rules)]
        stacked = population_match_matrix_stacked(rules, _DATASET.X)
        oracle = np.stack([match_mask_dense(r, _DATASET.X) for r in rules])
        assert np.array_equal(stacked, oracle)

    @given(st.integers(0, 2**32 - 1), st.sampled_from([1, 7, 64, 10_000]))
    @settings(max_examples=20, deadline=None)
    def test_block_size_never_changes_result(self, seed, block_size):
        rng = np.random.default_rng(seed)
        rules = [_random_rule(rng) for _ in range(5)]
        full = population_match_matrix_stacked(rules, _DATASET.X)
        blocked = population_match_matrix_stacked(
            rules, _DATASET.X, block_size=block_size
        )
        assert np.array_equal(full, blocked)

    def test_empty_population(self):
        out = population_match_matrix_stacked([], _DATASET.X)
        assert out.shape == (0, len(_DATASET))


class TestIncrementalState:
    @given(
        st.integers(0, 2**32 - 1),
        st.lists(st.tuples(st.integers(0, 7), st.booleans()), max_size=25),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_replacement_sequence_matches_oracle(self, seed, moves):
        """After any replace()/try_replace() sequence the state equals a
        from-scratch recomputation (masks, fitness, coverage)."""
        rng = np.random.default_rng(seed)
        population = [_random_rule(rng) for _ in range(8)]
        state = PopulationState.from_population(population, _DATASET.X)
        for index, forced in moves:
            challenger = _random_rule(rng)
            if forced:
                population[index] = challenger
                state.replace(index, challenger)
            else:
                accepted = state.try_replace(population, challenger, index)
                assert accepted == (
                    population[index] is challenger
                ), "try_replace must mutate the population iff accepted"
        oracle = _oracle_state(population)
        assert np.array_equal(state.masks, oracle.masks)
        assert np.array_equal(state.fitness, oracle.fitness)
        assert np.array_equal(state.coverage_counts, oracle.coverage_counts)
        assert state.coverage == oracle.coverage
        state.verify(population, _DATASET.X)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_cold_start_paths_agree(self, seed):
        """Cached-mask and stacked-kernel cold starts are identical."""
        rng = np.random.default_rng(seed)
        population = [_random_rule(rng) for _ in range(6)]
        cached = PopulationState.from_population(
            population, _DATASET.X, use_cached=True
        )
        fresh = PopulationState.from_population(
            population, _DATASET.X, use_cached=False
        )
        assert np.array_equal(cached.masks, fresh.masks)
        assert np.array_equal(cached.fitness, fresh.fitness)
        assert np.array_equal(cached.coverage_counts, fresh.coverage_counts)

    def test_replace_rejects_unevaluated_rule(self):
        rng = np.random.default_rng(0)
        population = [_random_rule(rng) for _ in range(3)]
        state = PopulationState.from_population(population, _DATASET.X)
        bare = Rule.from_box(np.zeros(D), np.ones(D))
        try:
            state.replace(0, bare)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("unevaluated rule must be rejected")

    def test_as_mask_matrix_coercion(self):
        rng = np.random.default_rng(1)
        population = [_random_rule(rng) for _ in range(3)]
        state = PopulationState.from_population(population, _DATASET.X)
        assert as_mask_matrix(state) is state.masks
        raw = np.zeros((2, 5), dtype=bool)
        assert as_mask_matrix(raw) is raw

    def test_diagnostics_reject_state_for_other_windows(self):
        """A state built on train windows must not be reused for a
        same-length but different window matrix (identity guard)."""
        from repro.core.diagnostics import summarize_pool

        rng = np.random.default_rng(2)
        population = [_random_rule(rng) for _ in range(4)]
        state = PopulationState.from_population(population, _DATASET.X)
        assert state.windows is _DATASET.X
        other = _DATASET.X + 10.0  # same shape, different data
        via_state = summarize_pool(population, other, masks=state)
        fresh = summarize_pool(population, other)
        assert via_state == fresh  # state was (correctly) not reused
        assert summarize_pool(population, _DATASET.X, masks=state) == \
            summarize_pool(population, _DATASET.X)


class TestEngineEquivalence:
    def test_incremental_and_full_recompute_identical(self):
        """evolve() returns a bitwise-identical rule set either way."""
        from repro.core.engine import evolve

        cfg = _CONFIG.replace(generations=120, seed=3, stats_every=40)
        inc = evolve(_DATASET, cfg)
        full = evolve(_DATASET, cfg.replace(incremental=False))
        assert inc.replacements == full.replacements
        assert [r.encode() for r in inc.rules] == [
            r.encode() for r in full.rules
        ]
        assert inc.stats == full.stats

    def test_engine_state_matches_oracle_after_run(self):
        from repro.core.engine import SteadyStateEngine

        eng = SteadyStateEngine(_DATASET, _CONFIG.replace(generations=0, seed=9))
        eng.initialize()
        for _ in range(80):
            eng.step()
        eng.state.verify(eng.population, _DATASET.X)
        for i, rule in enumerate(eng.population):
            assert np.array_equal(
                eng.state.masks[i], match_mask(rule, _DATASET.X)
            )
