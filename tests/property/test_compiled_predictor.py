"""Property tests: the compiled prediction path vs the per-rule oracle.

``RuleSystem.predict(compiled=False)`` — one
:func:`~repro.core.matching.match_mask` and one scatter-add per rule —
is the ground truth.  :class:`~repro.core.compiled.CompiledRuleSystem`
must reproduce it **bitwise** (``np.array_equal`` with NaN equality)
over random pools mixing wildcards, constant and hyperplane rules,
including empty pools, all-abstain batches and block-boundary shapes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import CompiledRuleSystem
from repro.core.predictor import RuleSystem
from repro.core.rule import Rule


def random_pool(rng, n_rules, d, p_wildcard=0.3, p_linear=0.5, width=0.3):
    """A plausible evolved pool: boxes in [0, 1]^d, mixed rule kinds."""
    rules = []
    for _ in range(n_rules):
        lo = rng.uniform(0, 1 - width, size=d)
        hi = lo + rng.uniform(0.05, width, size=d)
        rule = Rule.from_box(lo, hi, prediction=float(rng.normal()))
        rule.wildcard = rng.random(d) < p_wildcard
        rule.error = float(rng.uniform(0.01, 1.0))
        if rng.random() < p_linear:
            rule.coeffs = np.concatenate(
                [rng.normal(scale=0.5, size=d), [float(rng.normal())]]
            )
        rules.append(rule)
    return rules


def assert_batches_bitwise_equal(a, b):
    assert np.array_equal(a.values, b.values, equal_nan=True)
    assert np.array_equal(a.predicted, b.predicted)
    assert np.array_equal(a.n_rules_used, b.n_rules_used)


class TestCompiledBitwiseEquality:
    @given(
        st.integers(1, 8),       # d
        st.integers(1, 40),      # rules
        st.integers(0, 200),     # patterns
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_pools(self, d, n_rules, n_patterns, seed):
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, n_rules, d)
        system = RuleSystem(rules)
        patterns = rng.uniform(-0.2, 1.2, size=(n_patterns, d))
        oracle = system.predict(patterns, compiled=False)
        fast = system.predict(patterns, compiled=True)
        assert_batches_bitwise_equal(oracle, fast)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_block_boundaries(self, seed):
        """Batch sizes straddling the internal block size stay exact."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 15, 4)
        system = RuleSystem(rules)
        compiled = CompiledRuleSystem(rules, block_size=7)
        for n in (1, 6, 7, 8, 13, 14, 15, 50):
            patterns = rng.uniform(0, 1, size=(n, 4))
            oracle = system.predict(patterns, compiled=False)
            fast = compiled.predict(patterns)
            assert_batches_bitwise_equal(oracle, fast)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_all_abstain_batch(self, seed):
        """Patterns far outside every box: NaN everywhere, zero counts."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 10, 3, p_wildcard=0.0)
        system = RuleSystem(rules)
        patterns = rng.uniform(5.0, 6.0, size=(30, 3))
        fast = system.predict(patterns, compiled=True)
        assert not fast.predicted.any()
        assert np.isnan(fast.values).all()
        assert_batches_bitwise_equal(
            system.predict(patterns, compiled=False), fast
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_wildcard_heavy_pools_hit_dense_fallback(self, seed):
        """Near-universal rules force the dense kernel branch."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 12, 3, p_wildcard=0.9, width=0.9)
        system = RuleSystem(rules)
        patterns = rng.uniform(0, 1, size=(120, 3))
        assert_batches_bitwise_equal(
            system.predict(patterns, compiled=False),
            system.predict(patterns, compiled=True),
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_constant_only_and_linear_only_pools(self, seed):
        rng = np.random.default_rng(seed)
        patterns = rng.uniform(0, 1, size=(40, 5))
        for p_linear in (0.0, 1.0):
            rules = random_pool(rng, 8, 5, p_linear=p_linear)
            system = RuleSystem(rules)
            assert_batches_bitwise_equal(
                system.predict(patterns, compiled=False),
                system.predict(patterns, compiled=True),
            )

    def test_empty_pool(self):
        system = RuleSystem([])
        batch = system.predict(np.zeros((4, 3)), compiled=True)
        assert not batch.predicted.any()
        assert np.isnan(batch.values).all()

    def test_empty_batch(self):
        rng = np.random.default_rng(0)
        system = RuleSystem(random_pool(rng, 5, 3))
        for compiled in (False, True):
            batch = system.predict(np.empty((0, 3)), compiled=compiled)
            assert batch.values.shape == (0,)
            assert batch.coverage == 0.0

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_single_pattern_fast_path(self, seed):
        """The streaming step (n=1) equals the oracle exactly."""
        rng = np.random.default_rng(seed)
        rules = random_pool(rng, 25, 4)
        system = RuleSystem(rules)
        for _ in range(10):
            x = rng.uniform(0, 1, size=4)
            oracle = system.predict(x[None, :], compiled=False)
            fast = system.predict(x[None, :], compiled=True)
            assert_batches_bitwise_equal(oracle, fast)
            one = system.compile().predict_one(x)
            if oracle.predicted[0]:
                assert one == oracle.values[0]
            else:
                assert one is None


class TestCompiledConstruction:
    def test_rejects_empty(self):
        try:
            CompiledRuleSystem([])
        except ValueError as err:
            assert "at least one" in str(err)
        else:  # pragma: no cover
            raise AssertionError("empty pool must be rejected")

    def test_rejects_unevaluated(self):
        raw = Rule.from_box(np.zeros(3), np.ones(3))  # prediction NaN
        try:
            CompiledRuleSystem([raw])
        except ValueError as err:
            assert "predicting part" in str(err)
        else:  # pragma: no cover
            raise AssertionError("unevaluated rule must be rejected")

    def test_coefficient_block_shape(self):
        rng = np.random.default_rng(1)
        rules = random_pool(rng, 7, 4)
        compiled = CompiledRuleSystem(rules)
        assert compiled.lo.shape == (7, 4)
        assert compiled.hi.shape == (7, 4)
        assert compiled.coeffs.shape == (7, 5)
        # Constant rules: zero weights, p_R as intercept.
        for i, rule in enumerate(rules):
            if rule.coeffs is None:
                assert not compiled.coeffs[i, :4].any()
                assert compiled.coeffs[i, 4] == rule.prediction

    def test_system_caches_compiled_pack(self):
        rng = np.random.default_rng(2)
        system = RuleSystem(random_pool(rng, 5, 3))
        assert system.compile() is system.compile()
        merged = system.merged_with(system)
        assert len(merged.compile()) == 10
