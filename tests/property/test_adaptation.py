"""Property tests for the online-adaptation loop.

Four contracts from ``repro.service.adaptation``:

* **no false positives** — a stationary stream (any scale of noise,
  any seed) never trips the :class:`DriftMonitor` at the calibrated
  default thresholds;
* **bounded detection** — an injected mean shift, variance shift or
  coverage collapse fires within a bounded number of post-shift
  observations, and fires exactly once per shift;
* **replay determinism** — drift decisions are a pure function of the
  observation sequence: the same errors produce the identical event
  log regardless of the injected clock (which only stamps events);
* **bitwise shadow** — :class:`ShadowScorer` output equals a direct
  :meth:`~repro.core.compiled.CompiledRuleSystem.predict_windows`
  replay of the same per-stream windows, for any pool, interleaving
  and micro-batch split — in-process and through the sharded gateway
  (``--workers N``) — and attaching a shadow never changes the
  champion's wire output.  :class:`RetrainJob` pooling is held bitwise
  to a direct :func:`~repro.core.multirun.multirun` call.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compiled import CompiledRuleSystem
from repro.core.config import EvolutionConfig
from repro.core.multirun import multirun
from repro.core.predictor import RuleSystem
from repro.series.windowing import WindowDataset
from repro.service import ForecastService
from repro.service.adaptation import (
    DriftConfig,
    DriftMonitor,
    RetrainJob,
    ShadowScorer,
)

from test_service_batching import interleaved_events, partitions, random_pool

#: Post-shift error budget within which every injected shift must fire.
#: Calibration (docs/serving.md) measures <= 23 for 4x mean and 3x
#: variance shifts; 64 leaves slack without weakening the contract.
DETECTION_BOUND = 64


def _feed(monitor, errors, predicted=None):
    """Feed one stream's error sequence; return the fired events."""
    fired = []
    for i, err in enumerate(errors):
        hit = predicted[i] if predicted is not None else err is not None
        event = monitor.observe("s", err, hit)
        if event is not None:
            fired.append(event)
    return fired


class TestStationaryNoFalsePositives:
    """Stationary noise never drifts, at any scale, for many seeds."""

    @pytest.mark.parametrize("sigma", [0.1, 1.0, 10.0])
    def test_half_normal_errors_never_fire(self, sigma):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            errors = np.abs(rng.normal(0.0, sigma, size=500))
            monitor = DriftMonitor(clock=lambda: 0.0)
            assert _feed(monitor, errors.tolist()) == []
            assert monitor.drifted() == []

    def test_slowly_wandering_noise_never_fires(self):
        """A mild trend inside the drift allowance stays quiet."""
        rng = np.random.default_rng(7)
        level = 1.0 + 0.1 * np.sin(np.arange(500) / 80.0)
        errors = np.abs(rng.normal(0.0, 1.0, size=500)) * level
        monitor = DriftMonitor(clock=lambda: 0.0)
        assert _feed(monitor, errors.tolist()) == []


class TestBoundedDetection:
    """Injected shifts fire exactly once, within DETECTION_BOUND."""

    def _shifted(self, seed, pre, post):
        rng = np.random.default_rng(seed)
        a = np.abs(rng.normal(0.0, pre, size=200))
        b = np.abs(rng.normal(0.0, post, size=DETECTION_BOUND))
        return np.concatenate([a, b]).tolist()

    @pytest.mark.parametrize("seed", range(8))
    def test_mean_shift_detected(self, seed):
        errors = self._shifted(seed, pre=1.0, post=4.0)
        monitor = DriftMonitor(clock=lambda: 0.0)
        events = _feed(monitor, errors)
        assert len(events) == 1
        event = events[0]
        assert event.kind in ("error-ratio", "page-hinkley")
        assert event.n_errors <= 200 + DETECTION_BOUND
        assert event.statistic > event.threshold

    @pytest.mark.parametrize("seed", range(8))
    def test_variance_shift_detected(self, seed):
        errors = self._shifted(seed, pre=1.0, post=3.0)
        monitor = DriftMonitor(clock=lambda: 0.0)
        events = _feed(monitor, errors)
        assert len(events) == 1
        assert events[0].kind in ("error-ratio", "page-hinkley")

    def test_coverage_collapse_detected(self):
        """A champion that stops matching fires the coverage test."""
        monitor = DriftMonitor(clock=lambda: 0.0)
        rng = np.random.default_rng(3)
        errors = np.abs(rng.normal(0.0, 1.0, size=200)).tolist()
        assert _feed(monitor, errors) == []
        # Regime change: the champion abstains on every further step.
        events = _feed(
            monitor, [None] * 96, predicted=[False] * 96
        )
        assert len(events) == 1
        assert events[0].kind == "coverage-drop"
        assert events[0].recent < events[0].threshold

    def test_cooldown_disarms_after_an_event(self):
        """Right after a detection the monitor must not fire again."""
        config = DriftConfig()
        monitor = DriftMonitor(config, clock=lambda: 0.0)
        rng = np.random.default_rng(5)
        errors = (
            np.abs(rng.normal(0.0, 1.0, size=200)).tolist()
            + np.abs(rng.normal(0.0, 8.0, size=config.cooldown)).tolist()
        )
        events = _feed(monitor, errors)
        assert len(events) == 1  # the shift, once — cooldown held

    def test_clear_consumes_the_flag_but_keeps_state(self):
        monitor = DriftMonitor(clock=lambda: 0.0)
        rng = np.random.default_rng(5)
        _feed(
            monitor,
            np.abs(rng.normal(0.0, 1.0, size=200)).tolist()
            + np.abs(rng.normal(0.0, 8.0, size=DETECTION_BOUND)).tolist(),
        )
        assert monitor.drifted() == ["s"]
        monitor.clear("s")
        assert monitor.drifted() == []
        assert len(monitor.events) == 1  # the log is append-only


class TestReplayDeterminism:
    """Same observations => same event log; the clock only stamps."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), factor=st.floats(3.0, 10.0))
    def test_event_log_is_clock_invariant(self, seed, factor):
        rng = np.random.default_rng(seed)
        errors = (
            np.abs(rng.normal(0.0, 1.0, size=150)).tolist()
            + np.abs(rng.normal(0.0, factor, size=100)).tolist()
        )
        ticks_a = iter(range(10_000))
        ticks_b = iter(range(0, 1_000_000, 100))
        mon_a = DriftMonitor(clock=lambda: float(next(ticks_a)))
        mon_b = DriftMonitor(clock=lambda: float(next(ticks_b)))
        ev_a = _feed(mon_a, errors)
        ev_b = _feed(mon_b, errors)

        def key(e):
            # Everything but the stamp, bitwise (repr pins the floats).
            return (e.stream, e.kind, e.n_errors, repr(e.statistic),
                    repr(e.threshold), repr(e.baseline), repr(e.recent))

        assert [key(e) for e in ev_a] == [key(e) for e in ev_b]

    def test_two_replays_share_the_full_log(self):
        rng = np.random.default_rng(11)
        errors = (
            np.abs(rng.normal(0.0, 1.0, size=200)).tolist()
            + np.abs(rng.normal(0.0, 5.0, size=200)).tolist()
        )
        logs = []
        for _ in range(2):
            monitor = DriftMonitor(clock=lambda: 0.0)
            _feed(monitor, errors)
            logs.append([e.to_dict() for e in monitor.events])
        assert logs[0] == logs[1] and logs[0]


# -- shadow scoring -----------------------------------------------------------


def _stream_windows(values, d, entries):
    """Stack each logged entry's window ``values[t-d+1 .. t]``."""
    return np.asarray(
        [values[t - d + 1: t + 1] for t, _, _ in entries], dtype=np.float64
    )


class TestShadowBitwise:
    """Shadow output == direct predict_windows replay, bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(
        d=st.integers(1, 5),
        n_champ=st.integers(1, 15),
        n_chal=st.integers(1, 15),
        n_streams=st.integers(1, 4),
        per_stream=st.integers(0, 30),
        max_batch=st.integers(1, 13),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_inprocess_shadow_equals_direct_replay(
        self, d, n_champ, n_chal, n_streams, per_stream, max_batch, seed
    ):
        rng = np.random.default_rng(seed)
        champion = RuleSystem(random_pool(rng, n_champ, d))
        challenger = RuleSystem(random_pool(rng, n_chal, d))
        streams = {
            f"s{k}": [float(v) for v in rng.uniform(-0.2, 1.2, per_stream)]
            for k in range(n_streams)
        }
        events = interleaved_events(rng, streams)

        plain = ForecastService()
        shadowed = ForecastService()
        for name in streams:
            plain.bind_system(name, champion, model="m")
            shadowed.bind_system(name, champion, model="m")
        scorer = ShadowScorer("m", ("m", 0), challenger)
        shadowed.attach_adaptation(scorer)

        batches = partitions(rng, events, max_batch)
        wire_plain = [f for b in batches for f in plain.ingest(b)]
        wire_shadow = [f for b in batches for f in shadowed.ingest(b)]

        # Attaching a shadow never changes the champion's wire output.
        assert [repr(f) for f in wire_plain] == [
            repr(f) for f in wire_shadow
        ]

        compiled = (
            challenger.compile()
            if not isinstance(challenger, CompiledRuleSystem)
            else challenger
        )
        total = 0
        for name, entries in scorer.logs().items():
            windows = _stream_windows(streams[name], d, entries)
            scored = compiled.predict_windows(windows)
            assert [repr(v) for _, v, _ in entries] == [
                repr(v) for v in scored.values.tolist()
            ]
            assert [flag for _, _, flag in entries] == (
                scored.predicted.tolist()
            )
            total += len(entries)
        assert total == scorer.n_shadowed
        # Every ready champion step was shadowed.
        assert total == sum(f.ready for f in wire_plain)


D_SHARD = 3
SHARD_STREAMS = [f"shadow-{i}" for i in range(6)]


@pytest.fixture(scope="class")
def sharded_shadowed():
    """A 2-worker sharded service with one challenger attached."""
    from repro.parallel.shm import live_segments
    from repro.service.sharding import ShardConfig, ShardedForecastService

    rng = np.random.default_rng(42)
    champion = RuleSystem(random_pool(rng, 12, D_SHARD))
    challenger = RuleSystem(random_pool(rng, 9, D_SHARD))
    service = ShardedForecastService(config=ShardConfig(workers=2))
    for name in SHARD_STREAMS:
        service.bind_system(name, champion, model="m")
    service.attach_shadow("m", 0, challenger, challenger_version=7)
    yield service, challenger
    service.close()
    assert live_segments() == []


class TestShardedShadowBitwise:
    """The sharded gateway's shadow path is bitwise too."""

    def test_sharded_shadow_equals_direct_replay(self, sharded_shadowed):
        service, challenger = sharded_shadowed
        rng = np.random.default_rng(1234)
        streams = {
            name: [float(v) for v in rng.uniform(-0.2, 1.2, 40)]
            for name in SHARD_STREAMS
        }
        events = interleaved_events(rng, streams)
        for batch in partitions(rng, events, 17):
            service.ingest(batch)

        logs = service.shadow_logs()["m"]
        compiled = challenger.compile()
        total = 0
        for name, entries in logs.items():
            windows = _stream_windows(streams[name], D_SHARD, entries)
            scored = compiled.predict_windows(windows)
            assert [repr(v) for _, v, _ in entries] == [
                repr(v) for v in scored.values.tolist()
            ]
            assert [bool(flag) for _, _, flag in entries] == (
                scored.predicted.tolist()
            )
            total += len(entries)
        # Every stream produced ready windows and all were shadowed.
        assert set(logs) == set(SHARD_STREAMS)
        assert total == sum(
            len(vals) - D_SHARD + 1 for vals in streams.values()
        )
        merged = service.stats()["adaptation"]["shadow"]["m"]
        assert merged["shadowed_windows"] == total
        assert merged["challenger_version"] == 7


# -- retrain pooling ----------------------------------------------------------


class TestRetrainBitwise:
    """RetrainJob pooling == a direct multirun on the same window."""

    def test_pooled_challenger_matches_multirun(self, tmp_path):
        rng = np.random.default_rng(21)
        t = np.arange(120)
        series = np.sin(t / 5.0) + rng.normal(0.0, 0.05, t.size)
        config = EvolutionConfig(
            d=3, horizon=1, population_size=20, generations=15,
            early_stop_patience=10,
        )
        job = RetrainJob(
            "m", series, config,
            state_dir=tmp_path / "retrain",
            coverage_target=0.95, max_executions=2, root_seed=11,
        )
        outcome = job.run()
        assert outcome is not None

        dataset = WindowDataset.from_series(series, d=3, horizon=1)
        direct = multirun(
            dataset, config,
            coverage_target=0.95, max_executions=2, root_seed=11,
        )
        assert outcome.n_executions == direct.n_executions
        assert list(outcome.coverage_history) == list(
            direct.coverage_history
        )
        assert len(outcome.system) == len(direct.system)
        a = outcome.system.compile().predict_windows(dataset.X)
        b = direct.system.compile().predict_windows(dataset.X)
        assert [repr(v) for v in a.values.tolist()] == [
            repr(v) for v in b.values.tolist()
        ]
        assert a.predicted.tolist() == b.predicted.tolist()
