"""Property-based tests for engine- and system-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EvolutionConfig, FitnessParams, MutationParams
from repro.core.engine import SteadyStateEngine
from repro.core.predictor import RuleSystem
from repro.core.rule import Rule
from repro.series.noise import sine_series
from repro.series.windowing import WindowDataset


@st.composite
def small_configs(draw):
    """Random-but-sane engine configurations on a fixed tiny dataset."""
    return EvolutionConfig(
        d=4,
        horizon=draw(st.integers(1, 3)),
        population_size=draw(st.integers(4, 12)),
        generations=draw(st.integers(0, 60)),
        fitness=FitnessParams(e_max=draw(st.floats(0.05, 1.0))),
        mutation=MutationParams(
            rate=draw(st.floats(0.0, 1.0)),
            scale=draw(st.floats(0.01, 0.5)),
        ),
        tournament_rounds=draw(st.integers(1, 4)),
        predicting_mode=draw(st.sampled_from(["linear", "constant"])),
        crowding=draw(st.sampled_from(["jaccard", "prediction", "random", "worst"])),
        seed=draw(st.integers(0, 2**31 - 1)),
    )


class TestEngineInvariants:
    @given(small_configs())
    @settings(max_examples=25, deadline=None)
    def test_run_preserves_structural_invariants(self, config):
        series = sine_series(160, period=25, noise_sigma=0.05, seed=3)
        dataset = WindowDataset.from_series(series, config.d, config.horizon)
        engine = SteadyStateEngine(dataset, config)
        result = engine.run()
        # Size invariant.
        assert len(result.rules) == config.population_size
        # Every rule is evaluated and self-consistent.
        for rule in result.rules:
            assert rule.is_evaluated
            assert rule.n_matched == int(rule.match_mask.sum())
            if rule.fitness > config.fitness.f_min:
                assert rule.n_matched > config.fitness.min_matches
                assert rule.error < config.fitness.e_max
        # Replacements never exceed generations.
        assert 0 <= result.replacements <= config.generations

    @given(small_configs())
    @settings(max_examples=15, deadline=None)
    def test_total_fitness_monotone(self, config):
        series = sine_series(160, period=25, noise_sigma=0.05, seed=4)
        dataset = WindowDataset.from_series(series, config.d, config.horizon)
        engine = SteadyStateEngine(dataset, config)
        engine.initialize()
        prev = sum(r.fitness for r in engine.population)
        for _ in range(min(30, config.generations or 30)):
            engine.step()
            cur = sum(r.fitness for r in engine.population)
            assert cur >= prev - 1e-9
            prev = cur


class TestPredictorProperties:
    @given(
        st.integers(1, 6),
        st.integers(1, 20),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_prediction_is_mean_of_matching_outputs(self, d, n_rules, seed):
        rng = np.random.default_rng(seed)
        rules = []
        for _ in range(n_rules):
            lo = rng.uniform(0, 0.6, size=d)
            hi = lo + rng.uniform(0.05, 0.4, size=d)
            r = Rule.from_box(lo, hi, prediction=float(rng.normal()))
            r.error = 0.1
            rules.append(r)
        system = RuleSystem(rules)
        patterns = rng.uniform(0, 1, size=(30, d))
        batch = system.predict(patterns)
        for i in range(30):
            outs = [
                r.prediction for r in rules if r.matches(patterns[i])
            ]
            if outs:
                assert batch.predicted[i]
                assert np.isclose(batch.values[i], np.mean(outs))
                assert batch.n_rules_used[i] == len(outs)
            else:
                assert not batch.predicted[i]
                assert np.isnan(batch.values[i])

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_merging_pools_never_reduces_coverage(self, seed):
        rng = np.random.default_rng(seed)
        d = 3

        def pool(k):
            rules = []
            for _ in range(k):
                lo = rng.uniform(0, 0.7, size=d)
                r = Rule.from_box(lo, lo + 0.2, prediction=0.5)
                r.error = 0.1
                rules.append(r)
            return RuleSystem(rules)

        a, b = pool(4), pool(4)
        patterns = rng.uniform(0, 1, size=(100, d))
        merged = a.merged_with(b)
        assert merged.coverage(patterns) >= max(
            a.coverage(patterns), b.coverage(patterns)
        ) - 1e-12
