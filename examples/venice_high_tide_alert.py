#!/usr/bin/env python3
"""Acqua-alta alerting: the paper's motivating Venice use case (§4.1).

Standard global models predict average tides well but miss the rare
"high water" events that matter.  This example trains the rule system
on the synthetic lagoon series, then audits it specifically on the
*extreme* validation hours (level above a flood threshold): hit rate,
error on extremes vs error overall, and an ASCII rendition of the
Figure-2-style segment around the worst event.

Usage::

    python examples/venice_high_tide_alert.py [--threshold 80] [--seed 1]
"""

import argparse

import numpy as np

from repro import quick_forecast
from repro.analysis import overlay_plot
from repro.series import load_venice


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=80.0,
                        help="flood alert level in cm")
    parser.add_argument("--horizon", type=int, default=4,
                        help="alert lead time in hours")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    data = load_venice(scale="bench", seed=20070401)
    result = quick_forecast(
        data,
        d=24,
        horizon=args.horizon,
        e_max=25.0,
        generations=3000,
        population_size=60,
        max_executions=3,
        seed=args.seed,
    )

    y = result.validation.y
    pred = result.batch.values
    covered = result.batch.predicted

    print(f"validation hours: {len(y)}; coverage "
          f"{100 * covered.mean():.1f}%; overall RMSE "
          f"{result.score.error:.2f} cm")

    extreme = y >= args.threshold
    n_extreme = int(extreme.sum())
    if n_extreme == 0:
        print(f"no validation hour reached {args.threshold} cm — lower "
              "--threshold to audit extremes")
        return

    hits = extreme & covered
    print(f"\nextreme hours (level >= {args.threshold:.0f} cm): {n_extreme}")
    print(f"predicted (rule matched): {int(hits.sum())} "
          f"({100 * hits.sum() / n_extreme:.1f}% of extremes)")
    if hits.any():
        err = np.abs(pred[hits] - y[hits])
        print(f"extreme-hour MAE:  {err.mean():.2f} cm "
              f"(max {err.max():.2f} cm)")
        alarm_pred = pred[hits] >= args.threshold
        print(f"alert precision on predicted extremes: "
              f"{100 * alarm_pred.mean():.1f}% would have raised the alarm")

    peak = int(np.argmax(y))
    lo, hi = max(0, peak - 48), min(len(y), peak + 48)
    print("\nsegment around the highest tide "
          f"(hours {lo}..{hi}, peak {y[peak]:.1f} cm):\n")
    print(overlay_plot(
        {"real": y[lo:hi], "pred": pred[lo:hi]},
        title=f"high-water event, horizon {args.horizon} h "
              "(gaps = system abstained)",
    ))


if __name__ == "__main__":
    main()
