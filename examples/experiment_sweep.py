#!/usr/bin/env python3
"""Orchestrated sweeps: plan, interrupt, resume, cache, extend.

A guided tour of the scenario registry + experiment orchestrator:

1. plan a sweep over registered scenarios and inspect the task list;
2. run it with a checkpoint directory, interrupting halfway;
3. resume the "killed" sweep — finished tasks are rehydrated, not
   re-executed, and the final results are bitwise identical to an
   uninterrupted run;
4. re-run the finished sweep — everything is served from the memo
   cache;
5. register a *custom* scenario and run it through the exact same
   machinery (caching, resume and the CLI come for free).

Uses the tiny built-in ``smoke`` scenario so the whole script finishes
in a few seconds.

Usage::

    python examples/experiment_sweep.py [--state-dir DIR]
"""

import argparse
import tempfile

from repro.analysis import (
    DatasetSpec,
    ExperimentOrchestrator,
    GridPoint,
    ScenarioSpec,
    get_scenario,
    register,
)
from repro.analysis.report import scenario_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--state-dir", default=None,
                        help="checkpoint directory (default: a tempdir)")
    args = parser.parse_args()
    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-sweep-")

    # 1. Plan: scenarios expand into independent, seeded tasks.
    orchestrator = ExperimentOrchestrator(state_dir=state_dir)
    tasks = orchestrator.plan(["smoke"])
    print(f"planned {len(tasks)} tasks: {[t.task_id for t in tasks]}")

    # 2. Run, "killed" after one task (max_tasks simulates the kill at
    #    a checkpoint boundary; a real SIGKILL behaves the same).
    partial = orchestrator.run(["smoke"], max_tasks=1)
    print(f"interrupted sweep: {partial.n_executed} executed, "
          f"complete={partial.complete}")

    # 3. Resume from the checkpoint — a fresh orchestrator, as after a
    #    process restart.  Finished work is rehydrated from the cache.
    resumed = ExperimentOrchestrator(state_dir=state_dir).resume()
    print(f"resumed sweep:     {resumed.n_executed} executed, "
          f"{resumed.n_cached} cached, complete={resumed.complete}")

    # 4. Re-run the whole sweep: a no-op, served from the memo cache.
    again = ExperimentOrchestrator(state_dir=state_dir).run(["smoke"])
    print(f"cached re-run:     {again.n_executed} executed, "
          f"{again.n_cached} cached")
    print()
    print(scenario_report(get_scenario("smoke"), again.payloads("smoke")))

    # 5. A custom workload is one register() call.  This sweeps the
    #    GA population size on Mackey-Glass h=50 — note the per-point
    #    config overrides; dataset kwargs, horizons, baselines and
    #    paper reference values work the same way.
    register(ScenarioSpec(
        name="popsize-sweep",
        title="Population-size sweep (example)",
        section="example",
        kind="ablation",
        description="How small can the population get before coverage dies?",
        dataset=DatasetSpec("mackey_glass"),
        config_factory="mackey",
        grid=tuple(
            GridPoint(
                label=f"pop{p}", horizon=50, variant=f"population={p}",
                config_overrides=(
                    ("population_size", p), ("generations", 150), ("d", 6),
                ),
            )
            for p in (8, 15, 30)
        ),
        metric="nmse",
        coverage_target=0.90,
        max_executions=1,
        seed=42,
        seed_stride=0,
        detail="n_rules",
    ), replace=True)

    run = ExperimentOrchestrator(state_dir=state_dir).run(["popsize-sweep"])
    print()
    print(scenario_report(get_scenario("popsize-sweep"),
                          run.payloads("popsize-sweep")))
    print(f"\nstate dir: {state_dir} (safe to delete)")


if __name__ == "__main__":
    main()
