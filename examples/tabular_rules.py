#!/usr/bin/env python3
"""Beyond time series: rule evolution on tabular data (§5's claim).

The paper closes by noting the method "can be applied to other machine
learning domains".  This example uses :class:`repro.core.RuleRegressor`
on a regime-switching tabular problem where one global model cannot
work (the target follows different linear laws on each side of a
feature threshold), then audits the evolved pool with the diagnostics
module: niche overlap, specialists, per-zone accuracy.

Usage::

    python examples/tabular_rules.py [--seed 6]
"""

import argparse

import numpy as np

from repro.core import RuleRegressor, summarize_pool, zone_errors
from repro.core.diagnostics import redundancy_prune
from repro.core.predictor import RuleSystem


def make_problem(n, rng):
    """Piecewise-linear target: different law per regime of x0."""
    X = rng.uniform(-1, 1, size=(n, 4))
    y = np.where(
        X[:, 0] > 0.2,
        3.0 * X[:, 1] - X[:, 2],
        np.where(X[:, 0] < -0.2, -2.0 * X[:, 3], 0.5 * X[:, 1] * 0 + 1.0),
    )
    return X, y + rng.normal(0, 0.03, size=n)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=6)
    args = parser.parse_args()
    rng = np.random.default_rng(args.seed)

    X, y = make_problem(800, rng)
    Xt, yt = make_problem(300, rng)

    reg = RuleRegressor(
        population_size=40, generations=2000, n_executions=3, seed=args.seed
    )
    reg.fit(X, y)
    batch = reg.predict_full(Xt)
    covered = batch.predicted
    rmse = float(np.sqrt(np.mean((batch.values[covered] - yt[covered]) ** 2)))

    # One global hyperplane for contrast.
    A = np.column_stack([X, np.ones(len(X))])
    w, *_ = np.linalg.lstsq(A, y, rcond=None)
    lin = np.column_stack([Xt, np.ones(len(Xt))]) @ w
    lin_rmse = float(np.sqrt(np.mean((lin[covered] - yt[covered]) ** 2)))

    print(f"RuleRegressor: RMSE {rmse:.4f} at {100 * batch.coverage:.1f}% "
          f"coverage ({len(reg.system)} rules)")
    print(f"global linear: RMSE {lin_rmse:.4f} on the same rows "
          f"({lin_rmse / max(rmse, 1e-12):.1f}x worse)")

    # Pool diagnostics.
    summary = summarize_pool(reg.system.rules, X)
    print(f"\npool structure on training rows:")
    print(f"  coverage                {100 * summary.coverage:.1f}%")
    print(f"  mean matches per rule   {summary.mean_matches_per_rule:.1f}")
    print(f"  mean rules per row      {summary.mean_rules_per_window:.1f}")
    print(f"  specialist rules (<1%)  {100 * summary.specialist_fraction:.1f}%")
    print(f"  wildcard genes          {100 * summary.wildcard_fraction:.1f}%")
    print(f"  prediction span         {summary.prediction_span:.3f}")

    pruned = redundancy_prune(reg.system.rules, X, max_similarity=0.9)
    pruned_system = RuleSystem(pruned)
    pb = pruned_system.predict(Xt)
    pc = pb.predicted
    prmse = float(np.sqrt(np.mean((pb.values[pc] - yt[pc]) ** 2)))
    print(f"\nredundancy pruning: {len(reg.system)} -> {len(pruned)} rules, "
          f"RMSE {prmse:.4f} at {100 * pb.coverage:.1f}% coverage")

    print(f"\nper-output-zone audit (test rows):")
    print(f"{'zone':>22} {'points':>7} {'predicted':>10} {'MAE':>8} {'rules':>6}")
    for row in zone_errors(reg.system, Xt, yt, n_zones=4):
        lo, hi = row["zone"]
        mae = f"{row['mae']:.4f}" if np.isfinite(row["mae"]) else "-"
        print(f"  [{lo:7.2f}, {hi:7.2f}) {row['n_points']:>7} "
              f"{row['n_predicted']:>10} {mae:>8} {row['n_rules']:>6}")


if __name__ == "__main__":
    main()
