#!/usr/bin/env python3
"""Quickstart: evolve a rule system for Mackey-Glass and inspect it.

Runs the paper's full pipeline in under a minute:

1. generate the Mackey-Glass series and take the paper's split;
2. evolve local prediction rules (multi-execution pooling, §3.4);
3. predict the test windows and report NMSE + percentage of prediction;
4. print a few evolved rules in the paper's IF/THEN form.

Usage::

    python examples/quickstart.py [--horizon 50] [--seed 0]
"""

import argparse

from repro import quick_forecast
from repro.metrics import score_table2
from repro.series import load_mackey_glass


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=int, default=50,
                        help="prediction horizon tau (paper: 50 and 85)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--generations", type=int, default=2500,
                        help="steady-state iterations per execution")
    parser.add_argument("--population", type=int, default=50,
                        help="rules per population")
    parser.add_argument("--executions", type=int, default=3,
                        help="max pooled executions (§3.4)")
    args = parser.parse_args()

    data = load_mackey_glass()
    print(f"Mackey-Glass: {len(data.train)} train / "
          f"{len(data.validation)} test samples, horizon {args.horizon}")

    result = quick_forecast(
        data,
        d=12,
        horizon=args.horizon,
        generations=args.generations,
        population_size=args.population,
        coverage_target=0.90,
        max_executions=args.executions,
        seed=args.seed,
    )

    nmse = score_table2(
        result.validation.y, result.batch.values, result.batch.predicted
    )
    print(f"\nrule pool: {len(result.system)} rules from "
          f"{result.multirun.n_executions} executions")
    print(f"NMSE over predicted subset: {nmse.error:.4f}")
    print(f"percentage of prediction:   {nmse.percentage:.1f}%")

    print("\nSample evolved rules (paper §3.1 IF/THEN form):")
    for rule in sorted(result.system.rules, key=lambda r: -r.fitness)[:5]:
        print(" ", rule.describe())


if __name__ == "__main__":
    main()
