#!/usr/bin/env python3
"""Parallel patterns: multi-execution pooling and the island model.

Two ways to spend cores on the paper's method:

1. **Multi-execution pooling (§3.4)** — the paper's own outer loop,
   parallelized over a process pool (compare serial vs parallel wall
   time for the same seeds and identical results).
2. **Island model** — co-evolving populations exchanging their best
   rules along a networkx topology (ring vs complete), a distributed-GA
   extension natural for the IPPS venue.

Usage::

    python examples/parallel_islands.py [--jobs 4] [--seed 5]
"""

import argparse
import time

from repro.core import mackey_config, multirun
from repro.metrics import score_table2
from repro.parallel import (
    IslandModel,
    ProcessPoolBackend,
    SerialBackend,
    complete_topology,
    ring_topology,
)
from repro.series import load_mackey_glass


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--executions", type=int, default=4)
    args = parser.parse_args()

    data = load_mackey_glass()
    config = mackey_config(horizon=50, scale="bench")
    train_ds, val_ds = data.windows(config.d, config.horizon)

    # --- 1. multi-execution pooling: serial vs process pool -------------
    print(f"multi-execution pooling: {args.executions} executions")
    for label, backend in (
        ("serial", SerialBackend()),
        (f"{args.jobs} procs", ProcessPoolBackend(workers=args.jobs)),
    ):
        t0 = time.time()
        result = multirun(
            train_ds, config,
            coverage_target=1.01,            # fixed count: comparable work
            max_executions=args.executions,
            batch_size=args.executions,
            backend=backend,
            root_seed=args.seed,
        )
        elapsed = time.time() - t0
        batch = result.system.predict(val_ds.X)
        score = score_table2(val_ds.y, batch.values, batch.predicted)
        print(f"  {label:>9}: {elapsed:6.1f}s  NMSE {score.error:.4f} "
              f"@ {score.percentage:.1f}%  ({len(result.system)} rules)")
        backend.close()

    # --- 2. island model: ring vs complete topology ----------------------
    print("\nisland model: 4 islands, migration every 500 generations")
    island_config = config.replace(generations=2000)
    for label, topo in (
        ("ring", ring_topology(4)),
        ("complete", complete_topology(4)),
    ):
        t0 = time.time()
        model = IslandModel(
            train_ds, island_config, topo,
            migration_interval=500, root_seed=args.seed,
        )
        result = model.run()
        elapsed = time.time() - t0
        batch = result.system.predict(val_ds.X)
        score = score_table2(val_ds.y, batch.values, batch.predicted)
        print(f"  {label:>9}: {elapsed:6.1f}s  NMSE {score.error:.4f} "
              f"@ {score.percentage:.1f}%  migrations accepted "
              f"{result.migrations_accepted}/{result.migrations_sent}")


if __name__ == "__main__":
    main()
