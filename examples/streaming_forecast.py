"""Streaming forecasting: serve a trained rule pool one point at a time.

Trains a small pooled rule system on the Mackey-Glass series, then
replays the validation segment through a
:class:`repro.serve.StreamingForecaster` as if the observations arrived
live — forecast (or abstain) after every point, with running coverage —
and cross-checks the stream against the batched compiled prediction.

Run::

    PYTHONPATH=src python examples/streaming_forecast.py [--horizon 50]
"""

import argparse
import time

import numpy as np

from repro import StreamingForecaster, quick_forecast
from repro.series import load_mackey_glass


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=int, default=50)
    parser.add_argument("--generations", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    data = load_mackey_glass()
    result = quick_forecast(
        data,
        d=12,
        horizon=args.horizon,
        generations=args.generations,
        population_size=50,
        coverage_target=0.90,
        max_executions=3,
        seed=args.seed,
    )
    print(
        f"trained pool: {len(result.system)} rules, validation "
        f"{result.score.percentage:.1f}% predicted"
    )

    # --- live serving simulation -----------------------------------------
    forecaster = StreamingForecaster(result.system, horizon=args.horizon)
    stream = data.validation
    alerts = 0
    streamed = []
    start = time.perf_counter()
    for step in map(forecaster.update, stream):
        streamed.append(step.value)
        if step.predicted and step.value > 1.2:  # domain-specific threshold
            alerts += 1
    elapsed = time.perf_counter() - start
    print(
        f"streamed {forecaster.n_steps} windows in {elapsed:.2f}s "
        f"({forecaster.n_steps / elapsed:,.0f} predictions/sec), "
        f"coverage {forecaster.coverage:.2f}, {alerts} high-level alerts"
    )

    # --- the same stream as one batched backtest -------------------------
    replayed = StreamingForecaster(result.system).replay(stream)
    assert np.array_equal(np.array(streamed), replayed, equal_nan=True)
    print(
        f"replay() reproduces the stream bit-for-bit "
        f"({int(np.isfinite(replayed).sum())} predicted steps, batched)"
    )


if __name__ == "__main__":
    main()
