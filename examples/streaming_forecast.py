"""Streaming forecasting: registry + multi-stream gateway end to end.

Trains a small pooled rule system on the Mackey-Glass series, registers
it in an on-disk :class:`repro.service.ModelRegistry`, then serves
several concurrent streams through a
:class:`repro.service.ForecastService` — micro-batched scoring, one
shared model, per-stream coverage — and cross-checks the gateway
against both a per-stream :class:`repro.serve.StreamingForecaster` and
the batched compiled prediction, bit for bit.

This is the executable version of the walkthrough in
``docs/serving.md``.

Run::

    PYTHONPATH=src python examples/streaming_forecast.py [--horizon 50]
"""

import argparse
import tempfile
import time

import numpy as np

from repro import StreamingForecaster, quick_forecast
from repro.series import load_mackey_glass
from repro.service import ForecastService, ModelRegistry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=int, default=50)
    parser.add_argument("--generations", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--streams", type=int, default=8)
    args = parser.parse_args()

    data = load_mackey_glass()
    result = quick_forecast(
        data,
        d=12,
        horizon=args.horizon,
        generations=args.generations,
        population_size=50,
        coverage_target=0.90,
        max_executions=3,
        seed=args.seed,
    )
    print(
        f"trained pool: {len(result.system)} rules, validation "
        f"{result.score.percentage:.1f}% predicted"
    )

    # --- register the trained pool (versioned, integrity-checked) ---------
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-registry-"))
    record = registry.register(
        "mackey",
        result.system,
        metadata={"d": 12, "horizon": args.horizon, "dataset": "mackey_glass"},
        lineage={"kind": "example", "script": "streaming_forecast.py",
                 "seed": args.seed},
        promote=True,
    )
    print(
        f"registered mackey v{record.version} "
        f"(digest {record.digest[:12]}…, promoted)"
    )

    # --- many live streams through one micro-batched gateway --------------
    # Each "sensor" replays the validation segment at a different offset;
    # all of them share the one registered model (and its micro-batch).
    service = ForecastService(registry)
    names = [f"sensor-{k}" for k in range(args.streams)]
    for name in names:
        service.bind(name, "mackey")
    stream = data.validation
    n_rounds = len(stream) - args.streams
    alerts = 0
    start = time.perf_counter()
    for i in range(n_rounds):
        events = [(name, stream[i + k]) for k, name in enumerate(names)]
        for out in service.ingest(events):
            if out.predicted and out.value > 1.2:  # domain threshold
                alerts += 1
    elapsed = time.perf_counter() - start
    health = service.healthz()
    print(
        f"served {health['events']} events over {health['streams']} streams "
        f"in {elapsed:.2f}s ({health['events'] / elapsed:,.0f} events/sec, "
        f"{health['micro_batches']} micro-batches), "
        f"coverage {health['coverage']:.2f}, {alerts} high-level alerts"
    )

    # --- bitwise cross-checks ---------------------------------------------
    # 1. The gateway's first stream equals a private StreamingForecaster.
    forecaster = StreamingForecaster(result.system, horizon=args.horizon)
    service2 = ForecastService(registry)
    service2.bind("solo", "mackey")
    gateway_values = [
        service2.ingest_one("solo", v).value for v in stream
    ]
    streamed = [forecaster.update(v).value for v in stream]
    assert np.array_equal(gateway_values, streamed, equal_nan=True)

    # 2. Both equal the batched replay of the whole series.
    replayed = StreamingForecaster(result.system).replay(stream)
    assert np.array_equal(np.array(streamed), replayed, equal_nan=True)
    print(
        "gateway == per-stream forecaster == batched replay, bit for bit "
        f"({int(np.isfinite(replayed).sum())} predicted steps)"
    )


if __name__ == "__main__":
    main()
