#!/usr/bin/env python3
"""Bring-your-own series: the public API on user data, end to end.

Shows the pieces a downstream user composes when their data is not one
of the paper's domains: build a :class:`SplitSeries` from any 1-D
array, run :func:`quick_forecast`, save the trained rule system to
JSON, reload it, and verify the round-trip predicts identically.

The demo series is an AR(3) process with a regime-switching variance —
a simple case where *local* rules genuinely help (each regime gets its
own rules).

Usage::

    python examples/custom_series.py [--seed 7]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import quick_forecast
from repro.io import load_rule_system, save_rule_system
from repro.series import SplitSeries, ar_process
from repro.series.windowing import MinMaxScaler, train_test_split_series


def make_regime_series(n: int, seed: int) -> np.ndarray:
    """AR(3) with alternating low/high-volatility regimes."""
    quiet = ar_process(n, [0.6, 0.2, -0.1], sigma=0.3, seed=seed)
    loud = ar_process(n, [0.6, 0.2, -0.1], sigma=1.5, seed=seed + 1)
    regime = (np.arange(n) // 200) % 2  # flip every 200 steps
    return np.where(regime == 0, quiet, loud) + 5.0 * regime


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    series = make_regime_series(3000, args.seed)
    train, validation = train_test_split_series(series, 2400)
    scaler = MinMaxScaler().fit(train)
    data = SplitSeries(
        name="custom-ar3",
        train=scaler.transform(train),
        validation=scaler.transform(validation),
        scaler=scaler,
    )

    result = quick_forecast(
        data, d=8, horizon=1,
        generations=2000, population_size=40,
        max_executions=2, seed=args.seed,
    )
    print(f"custom series: RMSE {result.score.error:.4f} at "
          f"{result.score.percentage:.1f}% coverage "
          f"({len(result.system)} rules)")

    # Persist and reload the trained forecaster.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rules.json"
        save_rule_system(result.system, path)
        reloaded = load_rule_system(path)
        again = reloaded.predict(result.validation.X)
        same = np.allclose(
            np.nan_to_num(again.values), np.nan_to_num(result.batch.values)
        )
        print(f"saved {path.stat().st_size} bytes; reload predicts "
              f"identically: {same}")

    # Undo the normalization for user-facing values.
    covered = result.batch.predicted
    preds_cm = scaler.inverse_transform(result.batch.values[covered])
    print(f"first 5 predictions in original units: "
          f"{np.round(preds_cm[:5], 3).tolist()}")


if __name__ == "__main__":
    main()
