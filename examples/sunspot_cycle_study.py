#!/usr/bin/env python3
"""Sunspot study: rule locality across solar-cycle phases (§4.3).

The paper claims the rule system "recognizes, in a local way, the
peculiarities of the series".  This example makes that visible: it
evolves a rule pool on the synthetic monthly sunspot series, then
groups the evolved rules by the *output zone* they predict (cycle
minimum / rise / maximum / decline) and reports per-zone error and rule
specialization — plus the comparison against the feedforward and
recurrent network baselines of Table 3.

Usage::

    python examples/sunspot_cycle_study.py [--horizon 4] [--seed 3]
"""

import argparse

import numpy as np

from repro import quick_forecast
from repro.baselines import ElmanForecaster, ElmanParams, MLPForecaster, MLPParams
from repro.metrics import score_table3
from repro.series import load_sunspot


ZONES = [
    ("minimum", 0.00, 0.15),
    ("rise/decline", 0.15, 0.45),
    ("active", 0.45, 0.75),
    ("peak", 0.75, 1.01),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    data = load_sunspot()
    result = quick_forecast(
        data,
        d=24,
        horizon=args.horizon,
        e_max=0.2,
        generations=2500,
        population_size=50,
        max_executions=3,
        seed=args.seed,
    )
    val = result.validation
    score = score_table3(
        val.y, result.batch.values, args.horizon, result.batch.predicted
    )
    print(f"rule system: Galvan error {score.error:.5f} at "
          f"{score.percentage:.1f}% coverage ({len(result.system)} rules)")

    # Baselines on the same windows.
    train_ds, _ = data.windows(24, args.horizon)
    mlp = MLPForecaster(MLPParams(hidden=16, epochs=80, seed=args.seed))
    mlp.fit(train_ds.X, train_ds.y)
    ff = score_table3(val.y, mlp.predict(val.X), args.horizon)
    elman = ElmanForecaster(ElmanParams(hidden=10, epochs=40, seed=args.seed))
    elman.fit(train_ds.X, train_ds.y)
    rec = score_table3(val.y, elman.predict(val.X), args.horizon)
    print(f"feedforward NN: {ff.error:.5f}   recurrent NN: {rec.error:.5f}")

    # Per-zone audit: where in the cycle does each rule predict?
    print(f"\nper-zone breakdown (standardized level):")
    print(f"{'zone':>14} {'val pts':>8} {'covered':>8} {'MAE':>8} {'rules':>6}")
    preds = np.array([r.prediction for r in result.system.rules])
    for name, lo, hi in ZONES:
        in_zone = (val.y >= lo) & (val.y < hi)
        covered = in_zone & result.batch.predicted
        rules_here = int(((preds >= lo) & (preds < hi)).sum())
        if covered.any():
            mae = float(np.abs(
                result.batch.values[covered] - val.y[covered]
            ).mean())
            mae_s = f"{mae:.4f}"
        else:
            mae_s = "-"
        print(f"{name:>14} {int(in_zone.sum()):>8} "
              f"{int(covered.sum()):>8} {mae_s:>8} {rules_here:>6}")

    print("\nmost specific rules (fewest matches — local specialists):")
    for rule in sorted(result.system.rules, key=lambda r: r.n_matched)[:3]:
        print(" ", rule.describe())


if __name__ == "__main__":
    main()
