#!/usr/bin/env python3
"""Docstring + ``__all__`` audit for the public surface.

AST-based (no third-party dependency — the CI image has no pydocstyle;
if pydocstyle is installed locally it can be run in addition).  For
every audited module this enforces:

* a module docstring;
* an explicit ``__all__`` (so the public surface is a decision, not an
  accident);
* docstrings on every public module-level function and class, and on
  every public method of public classes (dunders exempt: parameters
  are documented in the class docstring, matching house style);
* every name exported via ``__all__`` is actually defined or imported
  in the module.

Usage::

    python tools/check_docstrings.py [--stats]

Exits 1 with a violation listing if the audit fails.  Audited trees
are listed in ``AUDITED`` below; extend it as modules mature.
"""

from __future__ import annotations

import argparse
import ast
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Files/trees whose public surface must be fully documented.
AUDITED = [
    SRC / "analysis",
    SRC / "bench",
    SRC / "core",
    SRC / "parallel",
    SRC / "serve.py",
    SRC / "service",
    SRC / "io",
]


def audited_files() -> Iterator[Path]:
    """Every python file under the audited trees."""
    for target in AUDITED:
        if target.is_file():
            yield target
        else:
            yield from sorted(target.rglob("*.py"))


def _has_docstring(node: ast.AST) -> bool:
    return ast.get_docstring(node, clean=False) is not None


def _assigned_names(node: ast.Module) -> set:
    names = set()
    for stmt in node.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
    return names


def _exported(node: ast.Module) -> Tuple[bool, List[str]]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    values = []
                    if isinstance(stmt.value, (ast.List, ast.Tuple)):
                        for elt in stmt.value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                values.append(elt.value)
                    return True, values
    return False, []


def check_file(path: Path) -> Tuple[List[str], int, int]:
    """(violations, documented, public) for one module."""
    rel = path.relative_to(REPO)
    tree = ast.parse(path.read_text(), filename=str(path))
    violations: List[str] = []
    documented = 0
    public = 1  # the module itself

    if _has_docstring(tree):
        documented += 1
    else:
        violations.append(f"{rel}: missing module docstring")

    has_all, exported = _exported(tree)
    if not has_all:
        violations.append(f"{rel}: missing __all__")
    else:
        defined = _assigned_names(tree)
        for name in exported:
            if name not in defined:
                violations.append(
                    f"{rel}: __all__ exports undefined name {name!r}"
                )

    def check_def(node, prefix: str = "") -> None:
        nonlocal documented, public
        if node.name.startswith("_") and not (
            node.name.startswith("__") and node.name.endswith("__")
        ):
            return
        if node.name.startswith("__"):  # dunders: class docstring covers them
            return
        public += 1
        if _has_docstring(node):
            documented += 1
        else:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            violations.append(
                f"{rel}: public {kind} {prefix}{node.name} missing docstring"
            )
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    check_def(item, prefix=f"{node.name}.")

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            check_def(stmt)

    return violations, documented, public


def main(argv=None) -> int:
    """Run the audit; print violations and return the exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stats", action="store_true",
                        help="print per-file docstring coverage")
    args = parser.parse_args(argv)

    all_violations: List[str] = []
    total_doc = total_pub = 0
    for path in audited_files():
        violations, documented, public = check_file(path)
        all_violations.extend(violations)
        total_doc += documented
        total_pub += public
        if args.stats:
            print(f"{documented:3d}/{public:3d}  {path.relative_to(REPO)}")

    pct = 100.0 * total_doc / total_pub if total_pub else 100.0
    print(f"docstring coverage: {total_doc}/{total_pub} ({pct:.1f}%) "
          f"across {len(list(audited_files()))} audited modules")
    if all_violations:
        print("\nviolations:")
        for v in all_violations:
            print(f"  {v}")
        return 1
    print("docstring/__all__ audit clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
