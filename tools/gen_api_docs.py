#!/usr/bin/env python3
"""Generate ``docs/api.md`` from the serving-surface docstrings.

AST-based (imports nothing from the package, so generation works
without numpy installed and cannot execute module side effects).  For
every module in ``MODULES`` this emits, in ``__all__`` order: the
module docstring, then each public class (with its public methods and
properties) or function — signature plus verbatim docstring.

The committed ``docs/api.md`` must always equal the generator's output
(same discipline as the ``docs/scenarios.md`` catalog): a docstring or
signature edit that is not accompanied by a regenerated file fails CI
and the mirror unit test.  Regenerate with::

    python tools/gen_api_docs.py > docs/api.md

``--check`` diffs the committed file instead and exits 1 on drift.
"""

from __future__ import annotations

import argparse
import ast
import difflib
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: (dotted name, path) pairs documented, in page order.
MODULES = [
    ("repro.serve", SRC / "serve.py"),
    ("repro.service", SRC / "service" / "__init__.py"),
    ("repro.service.registry", SRC / "service" / "registry.py"),
    ("repro.service.gateway", SRC / "service" / "gateway.py"),
    ("repro.service.store", SRC / "service" / "store.py"),
    ("repro.service.sharding", SRC / "service" / "sharding.py"),
    ("repro.service.adaptation", SRC / "service" / "adaptation.py"),
    ("repro.service.server", SRC / "service" / "server.py"),
    ("repro.service.metrics", SRC / "service" / "metrics.py"),
    ("repro.io.serialize", SRC / "io" / "serialize.py"),
    ("repro.core.compiled", SRC / "core" / "compiled.py"),
    ("repro.parallel.shm", SRC / "parallel" / "shm.py"),
    ("repro.bench.result", SRC / "bench" / "result.py"),
    ("repro.bench.record", SRC / "bench" / "record.py"),
    ("repro.bench.compare", SRC / "bench" / "compare.py"),
    ("repro.bench.runner", SRC / "bench" / "runner.py"),
]

HEADER = """\
# API reference — the serving + performance surface

*Generated from docstrings by `tools/gen_api_docs.py`; do not edit by
hand.  Regenerate with `python tools/gen_api_docs.py > docs/api.md`
(CI and `tests/unit/test_tools.py` fail when this file drifts from the
source docstrings).*

Covers the serving stack documented in [serving.md](serving.md):
single-stream serving (`repro.serve`), the registry + gateway
subsystem (`repro.service`), the pluggable stream store and the
sharded multi-process gateway (`repro.service.store`,
`repro.service.sharding`), the async network front-end and its
Prometheus metrics (`repro.service.server`, `repro.service.metrics`),
snapshot persistence
(`repro.io.serialize`) and the compiled scoring kernels
(`repro.core.compiled`) — plus the performance surface documented in
[benchmarking.md](benchmarking.md): the zero-copy shared-memory
backend (`repro.parallel.shm`) and the structured benchmark subsystem
(`repro.bench`).
"""


def _exported(tree: ast.Module) -> List[str]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return [
                        elt.value
                        for elt in stmt.value.elts  # type: ignore[attr-defined]
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
    return []


def _docstring_block(node: ast.AST, indent: str = "") -> List[str]:
    doc = ast.get_docstring(node, clean=True)
    if not doc:
        return [f"{indent}*(undocumented)*", ""]
    fence = "```"
    lines = [f"{indent}{fence}text"]
    lines += [f"{indent}{line}".rstrip() for line in doc.splitlines()]
    lines += [f"{indent}{fence}", ""]
    return lines


def _signature(node) -> str:
    args = ast.unparse(node.args)
    ret = f" -> {ast.unparse(node.returns)}" if node.returns else ""
    return f"{node.name}({args}){ret}"


def _is_property(node) -> bool:
    return any(
        (isinstance(d, ast.Name) and d.id == "property")
        or (isinstance(d, ast.Attribute) and d.attr in ("setter", "getter"))
        for d in node.decorator_list
    )


def _class_section(node: ast.ClassDef) -> List[str]:
    bases = ", ".join(ast.unparse(b) for b in node.bases)
    title = f"class {node.name}({bases})" if bases else f"class {node.name}"
    lines = [f"### `{title}`", ""]
    lines += _docstring_block(node)
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name.startswith("_"):
            continue
        kind = "property" if _is_property(item) else "method"
        lines.append(f"#### `{node.name}.{_signature(item)}` ({kind})")
        lines.append("")
        lines += _docstring_block(item)
    return lines


def _module_section(dotted: str, path: Path) -> List[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    lines = [f"## `{dotted}`", ""]
    lines += _docstring_block(tree)
    exported = _exported(tree)
    defs = {
        stmt.name: stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    reexports = [name for name in exported if name not in defs]
    if reexports:
        lines.append(
            "Re-exports: " + ", ".join(f"`{n}`" for n in reexports) + "."
        )
        lines.append("")
    for name in exported:
        node = defs.get(name)
        if node is None:
            continue
        if isinstance(node, ast.ClassDef):
            lines += _class_section(node)
        else:
            lines.append(f"### `{_signature(node)}`")
            lines.append("")
            lines += _docstring_block(node)
    return lines


def render() -> str:
    """The full generated markdown document."""
    lines = [HEADER]
    for dotted, path in MODULES:
        lines += _module_section(dotted, path)
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    """Print the reference (default) or --check the committed file."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="diff against docs/api.md; exit 1 on drift")
    args = parser.parse_args(argv)
    generated = render()
    if not args.check:
        print(generated, end="")
        return 0
    committed_path = REPO / "docs" / "api.md"
    committed = committed_path.read_text() if committed_path.exists() else ""
    if committed == generated:
        print("docs/api.md is in sync with source docstrings")
        return 0
    diff = difflib.unified_diff(
        committed.splitlines(keepends=True),
        generated.splitlines(keepends=True),
        fromfile="docs/api.md (committed)",
        tofile="docs/api.md (generated)",
    )
    print("".join(diff))
    print("docs/api.md is stale — regenerate with "
          "'python tools/gen_api_docs.py > docs/api.md'")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
